#include "sim/history_dump.h"

#include <iomanip>
#include <ostream>
#include <sstream>

namespace ftss {

void dump_history(std::ostream& os, const History& h, DumpOptions options) {
  const Round to = options.to_round > 0
                       ? std::min(options.to_round, h.length())
                       : h.length();
  os << "round |";
  for (int p = 0; p < h.n; ++p) os << "      c_" << p << " |";
  if (options.show_coterie) os << " coterie";
  if (options.show_faulty) os << " | faulty";
  os << "\n";

  for (Round r = std::max<Round>(options.from_round, 1); r <= to; ++r) {
    const RoundRecord& rec = h.at(r);
    os << std::setw(5) << r << " |";
    for (int p = 0; p < h.n; ++p) {
      if (!rec.alive[p]) {
        os << "  crashed |";
      } else if (rec.halted[p]) {
        os << "   halted |";
      } else if (rec.clock[p]) {
        os << std::setw(9) << *rec.clock[p] << " |";
      } else {
        os << "        ? |";
      }
    }
    if (options.show_coterie) {
      os << " {";
      for (int p = 0; p < h.n; ++p) {
        if (rec.coterie[p]) os << p;
      }
      os << "}";
    }
    if (options.show_faulty) {
      os << " | {";
      for (int p = 0; p < h.n; ++p) {
        if (rec.faulty_by_now[p]) os << p;
      }
      os << "}";
    }
    os << "\n";
    if (options.show_suspects && !rec.suspects.empty()) {
      os << "        suspects:";
      for (int p = 0; p < h.n && p < static_cast<int>(rec.suspects.size());
           ++p) {
        if (!rec.alive[p]) continue;
        os << " " << p << ":{";
        for (std::size_t i = 0; i < rec.suspects[p].size(); ++i) {
          if (i > 0) os << ",";
          os << rec.suspects[p][i];
        }
        os << "}";
      }
      os << "\n";
    }
    if (options.show_sends) {
      for (const auto& s : rec.sends) {
        os << "        " << s.sender << " -> " << s.dest << " ";
        if (s.delivered) {
          os << "delivered";
        } else if (s.dropped_by_sender) {
          os << "DROPPED (send omission)";
        } else if (s.dropped_by_receiver) {
          os << "DROPPED (receive omission)";
        } else if (s.dest_crashed) {
          os << "LOST (dest crashed)";
        } else if (s.lost_in_flight) {
          os << "IN FLIGHT (undelivered at end of run)";
        } else if (s.frame_corrupted) {
          os << "REJECTED (frame corrupt on the wire)";
        }
        // Jitter-delayed messages resolve in a later round than they were
        // sent; show the send round and delay so they are distinguishable
        // from same-round deliveries.
        if (s.delivery_round != s.sent_round) {
          os << " (sent @" << s.sent_round << ", delay "
             << (s.delivery_round - s.sent_round) << ")";
        }
        if (!s.payload.is_null()) os << "  " << s.payload;
        os << "\n";
      }
    }
  }
}

std::string history_to_string(const History& h, DumpOptions options) {
  std::ostringstream os;
  dump_history(os, h, options);
  return os.str();
}

}  // namespace ftss
