#include "sim/simulator.h"

#include <algorithm>
#include <stdexcept>

namespace ftss {

class SyncSimulator::OutboxImpl : public Outbox {
 public:
  OutboxImpl(ProcessId self, int n, std::vector<Message>* sink)
      : self_(self), n_(n), sink_(sink) {}

  void send(ProcessId to, Value payload) override {
    if (to < 0 || to >= n_) {
      throw std::out_of_range("Outbox::send: bad destination");
    }
    sink_->push_back(Message{self_, to, std::move(payload)});
  }

  void broadcast(Value payload) override {
    for (ProcessId q = 0; q < n_; ++q) {
      sink_->push_back(Message{self_, q, payload});
    }
  }

  int process_count() const override { return n_; }

 private:
  ProcessId self_;
  int n_;
  std::vector<Message>* sink_;
};

SyncSimulator::SyncSimulator(SyncConfig config,
                             std::vector<std::unique_ptr<SyncProcess>> processes)
    : config_(config),
      rng_(config.seed),
      processes_(std::move(processes)),
      plans_(processes_.size()),
      fault_manifested_(processes_.size(), false),
      causality_(static_cast<int>(processes_.size())) {
  history_.n = static_cast<int>(processes_.size());
}

void SyncSimulator::set_fault_plan(ProcessId p, FaultPlan plan) {
  if (started_) throw std::logic_error("fault plans must precede execution");
  plans_.at(p) = std::move(plan);
}

void SyncSimulator::corrupt_state(ProcessId p, const Value& state) {
  if (started_) throw std::logic_error("corruption must precede execution");
  processes_.at(p)->restore_state(state);
}

bool SyncSimulator::crashed(ProcessId p) const {
  return plans_[p].crash_at && round_ + 1 >= *plans_[p].crash_at;
}

std::vector<bool> SyncSimulator::planned_faulty() const {
  std::vector<bool> f(processes_.size(), false);
  for (std::size_t p = 0; p < plans_.size(); ++p) f[p] = !plans_[p].empty();
  return f;
}

bool SyncSimulator::send_dropped(ProcessId s, ProcessId d, Round r) {
  if (s == d) return false;  // own broadcast is always received (footnote 1)
  for (const auto& rule : plans_[s].send_omissions) {
    if (rule.covers(r, d) && (rule.probability >= 1.0 || rng_.chance(rule.probability))) {
      return true;
    }
  }
  return false;
}

bool SyncSimulator::receive_dropped(ProcessId s, ProcessId d, Round r) {
  if (s == d) return false;
  for (const auto& rule : plans_[d].receive_omissions) {
    if (rule.covers(r, s) && (rule.probability >= 1.0 || rng_.chance(rule.probability))) {
      return true;
    }
  }
  return false;
}

void SyncSimulator::run_rounds(int k) {
  started_ = true;
  const int n = process_count();

  for (int step = 0; step < k; ++step) {
    const Round r = ++round_;
    RoundRecord rec;
    rec.round = r;
    rec.alive.resize(n);
    rec.halted.resize(n);
    rec.state.resize(n);
    rec.clock.resize(n);

    std::vector<bool> alive(n);
    for (ProcessId p = 0; p < n; ++p) {
      alive[p] = !(plans_[p].crash_at && r >= *plans_[p].crash_at);
      rec.alive[p] = alive[p];
      if (alive[p]) {
        rec.halted[p] = processes_[p]->halted();
        if (config_.record_states) rec.state[p] = processes_[p]->snapshot_state();
        rec.clock[p] = processes_[p]->round_counter();
      }
      // A crash that takes effect this round manifests the fault now.
      if (plans_[p].crash_at && r >= *plans_[p].crash_at) {
        fault_manifested_[p] = true;
      }
    }

    causality_.begin_round();

    // Send phase: every live, non-halted process emits its messages.
    std::vector<Message> outgoing;
    for (ProcessId p = 0; p < n; ++p) {
      if (!alive[p] || processes_[p]->halted()) continue;
      OutboxImpl out(p, n, &outgoing);
      processes_[p]->begin_round(out);
    }

    std::vector<std::vector<Message>> inbox(n);

    // Resolve a message at its delivery round: crash / receive-omission /
    // delivery, recording the outcome in the current round's record.
    auto resolve = [&](Message&& m, Round sent_round,
                       const std::vector<bool>& sender_influence) {
      SendRecord sr;
      sr.sender = m.sender;
      sr.dest = m.dest;
      sr.sent_round = sent_round;
      sr.delivery_round = r;
      if (config_.record_states) sr.payload = m.payload;
      if (!alive[m.dest]) {
        sr.dest_crashed = true;
      } else if (receive_dropped(m.sender, m.dest, r)) {
        sr.dropped_by_receiver = true;
        fault_manifested_[m.dest] = true;
      } else {
        sr.delivered = true;
        causality_.deliver_snapshot(sender_influence, m.dest);
        inbox[m.dest].push_back(std::move(m));
      }
      rec.sends.push_back(std::move(sr));
    };

    // Messages from earlier rounds whose delivery jitter expires now.
    if (auto it = in_flight_.find(r); it != in_flight_.end()) {
      for (auto& flight : it->second) {
        resolve(std::move(flight.message), flight.sent_round,
                flight.sender_influence);
      }
      in_flight_.erase(it);
    }

    // This round's sends: send-omission faults apply now; remote messages
    // may be delayed, self-deliveries never are.
    for (auto& m : outgoing) {
      if (send_dropped(m.sender, m.dest, r)) {
        SendRecord sr;
        sr.sender = m.sender;
        sr.dest = m.dest;
        sr.sent_round = r;
        sr.delivery_round = r;
        if (config_.record_states) sr.payload = m.payload;
        sr.dropped_by_sender = true;
        fault_manifested_[m.sender] = true;
        rec.sends.push_back(std::move(sr));
        continue;
      }
      const int delay =
          (config_.max_extra_delay > 0 && m.sender != m.dest)
              ? static_cast<int>(rng_.uniform(0, config_.max_extra_delay))
              : 0;
      if (delay == 0) {
        resolve(std::move(m), r, causality_.send_snapshot(m.sender));
      } else {
        in_flight_[r + delay].push_back(
            InFlight{std::move(m), r, causality_.send_snapshot(m.sender)});
      }
    }

    // Receive/transition phase.
    for (ProcessId p = 0; p < n; ++p) {
      if (!alive[p] || processes_[p]->halted()) continue;
      std::stable_sort(inbox[p].begin(), inbox[p].end(),
                       [](const Message& a, const Message& b) {
                         return a.sender < b.sender;
                       });
      processes_[p]->end_round(inbox[p]);
    }

    rec.faulty_by_now = fault_manifested_;
    std::vector<bool> correct(n);
    for (int p = 0; p < n; ++p) correct[p] = !fault_manifested_[p];
    rec.coterie = causality_.coterie(correct);
    history_.rounds.push_back(std::move(rec));
  }
}

}  // namespace ftss
