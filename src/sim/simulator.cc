#include "sim/simulator.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <limits>
#include <stdexcept>

#include "util/worker_pool.h"

namespace ftss {

namespace {

// Process-wide threads default (SyncConfig::threads == 0).  0 in the slot
// means "not yet initialized from the environment"; the public value is
// always >= 1.  Atomic so a sweep's worker threads constructing simulators
// can read it while a test harness thread set it — last write wins.
std::atomic<unsigned> g_sim_threads_default{0};

std::atomic<std::int64_t (*)()> g_lane_now{nullptr};
std::atomic<void (*)(Round, std::int64_t)> g_lane_span{nullptr};

}  // namespace

unsigned sim_threads_default() {
  unsigned v = g_sim_threads_default.load(std::memory_order_relaxed);
  if (v == 0) {
    v = 1;
    if (const char* e = std::getenv("FTSS_SIM_THREADS")) {
      const long k = std::strtol(e, nullptr, 10);
      if (k > 0 && k < 65536) v = static_cast<unsigned>(k);
    }
    g_sim_threads_default.store(v, std::memory_order_relaxed);
  }
  return v;
}

void set_sim_threads_default(unsigned threads) {
  g_sim_threads_default.store(threads == 0 ? 1u : threads,
                              std::memory_order_relaxed);
}

void set_sim_lane_hooks(SimLaneHooks hooks) {
  g_lane_now.store(hooks.now, std::memory_order_relaxed);
  g_lane_span.store(hooks.span, std::memory_order_relaxed);
}

SimLaneHooks sim_lane_hooks() {
  SimLaneHooks hooks;
  hooks.now = g_lane_now.load(std::memory_order_relaxed);
  hooks.span = g_lane_span.load(std::memory_order_relaxed);
  if (hooks.now == nullptr || hooks.span == nullptr) return SimLaneHooks{};
  return hooks;
}

class SyncSimulator::OutboxImpl : public Outbox {
 public:
  OutboxImpl(ProcessId self, int n, std::vector<Message>* sink)
      : self_(self), n_(n), sink_(sink) {}

  void send(ProcessId to, Value payload) override {
    if (to < 0 || to >= n_) {
      throw std::out_of_range("Outbox::send: bad destination");
    }
    sink_->push_back(Message{self_, to, std::move(payload)});
  }

  void broadcast(Value payload) override {
    for (ProcessId q = 0; q < n_; ++q) {
      sink_->push_back(Message{self_, q, payload});
    }
  }

  int process_count() const override { return n_; }

 private:
  ProcessId self_;
  int n_;
  std::vector<Message>* sink_;
};

// Fast-path outbox for rounds where every message is statically known to be
// delivered this round (no faults manifestable, no jitter, nothing recorded
// or traced): sends are collected into the shared round log — a broadcast
// as ONE entry, not n fanned-out messages — and delivered after the
// collection phase, skipping the per-message fault checks and SendRecord
// plumbing entirely.  Deferring delivery to the end of the send phase is
// unobservable: send-time influence snapshots are pinned for the whole
// round by begin_round, and process code cannot read deliveries until its
// end_round runs.
class SyncSimulator::FastOutboxImpl : public Outbox {
 public:
  // The sink is a parameter (rather than the simulator's shared log) so the
  // parallel engine can hand each collection lane a private log; the serial
  // path passes &fast_log_ directly.
  FastOutboxImpl(ProcessId self, int n, std::vector<FastSend>* sink)
      : self_(self), n_(n), sink_(sink) {}

  void send(ProcessId to, Value payload) override {
    if (to < 0 || to >= n_) {
      throw std::out_of_range("Outbox::send: bad destination");
    }
    sink_->push_back(FastSend{self_, to, std::move(payload)});
  }

  void broadcast(Value payload) override {
    sink_->push_back(FastSend{self_, kBroadcastDest, std::move(payload)});
  }

  int process_count() const override { return n_; }

 private:
  ProcessId self_;
  int n_;
  std::vector<FastSend>* sink_;
};

SyncSimulator::SyncSimulator(SyncConfig config,
                             std::vector<std::unique_ptr<SyncProcess>> processes)
    : config_(config),
      rng_(config.seed),
      processes_(std::move(processes)),
      plans_(processes_.size()),
      fault_manifested_(processes_.size(), false),
      causality_(static_cast<int>(processes_.size())),
      in_flight_slots_(static_cast<std::size_t>(
                           std::max(0, config.max_extra_delay)) +
                       1),
      inbox_(processes_.size()),
      correct_(static_cast<int>(processes_.size())),
      last_suspects_(processes_.size(),
                     ProcessSet(static_cast<int>(processes_.size()))) {
  history_.n = static_cast<int>(processes_.size());
  for (const auto& p : processes_) {
    if (p->suspect_set() != nullptr) any_suspects_ = true;
  }

  // Resolve the parallel round engine's lane count: 0 inherits the process
  // default, and more lanes than processes (or than dest_lane_'s uint8 can
  // index) buys nothing.
  const unsigned wanted =
      config_.threads == 0 ? sim_threads_default() : config_.threads;
  const unsigned cap = static_cast<unsigned>(std::min<std::size_t>(
      std::max<std::size_t>(1, processes_.size()), 255));
  lanes_ = std::max(1u, std::min(wanted, cap));
  if (lanes_ > 1) {
    engine_lanes_.reserve(lanes_);
    for (unsigned l = 0; l < lanes_; ++l) {
      engine_lanes_.emplace_back();
      engine_lanes_.back().causality = causality_.make_lane();
    }
    dest_lane_.resize(processes_.size());
    for (unsigned l = 0; l < lanes_; ++l) {
      const auto [lo, hi] = WorkerPool::split(processes_.size(), lanes_, l);
      for (std::size_t d = lo; d < hi; ++d) {
        dest_lane_[d] = static_cast<std::uint8_t>(l);
      }
    }
    // Lanes are logical: correctness never depends on the pool's physical
    // size (a 1-thread pool runs every lane inline), but grow it so a
    // threads = 8 simulator gets real concurrency on capable hardware.
    WorkerPool::shared().ensure_lanes(lanes_);
  }
}

// Fault manifestation is a trace event exactly once per process (the round
// its plan first deviates — F(H') growing, in the paper's terms).
void SyncSimulator::mark_faulty(ProcessId p, Round r, const char* cause) {
  if (!fault_manifested_[p]) {
    fault_manifested_[p] = true;
    if (trace_ != nullptr) {
      trace_->event(TraceEvent{.kind = TraceEventKind::kFaultManifest,
                               .round = r,
                               .process = p,
                               .detail = cause,
                               .data = {}});
    }
  }
}

// Out-of-line so the Value-bearing TraceEvent construction stays off the
// message hot path (see header comment).
__attribute__((noinline)) void SyncSimulator::trace_message(
    TraceEventKind kind, Round r, ProcessId sender, ProcessId dest,
    Round sent_round, const char* cause, std::int64_t flow_id) {
  trace_->event(TraceEvent{.kind = kind,
                           .round = r,
                           .process = sender,
                           .peer = dest,
                           .aux = sent_round,
                           .detail = cause,
                           .flow_id = flow_id,
                           .data = {}});
}

void SyncSimulator::set_fault_plan(ProcessId p, FaultPlan plan) {
  if (started_) throw std::logic_error("fault plans must precede execution");
  plans_.at(p) = std::move(plan);
}

void SyncSimulator::corrupt_state(ProcessId p, const Value& state) {
  if (started_) throw std::logic_error("corruption must precede execution");
  processes_.at(p)->restore_state(state);
}

// Aligned with the round loop's liveness test (`r >= *crash_at`): a process
// with crash_at = c is alive through round c-1 and crashed from round c on,
// so after executing rounds 1..round_ it is crashed iff round_ >= c.  The
// old `round_ + 1 >= c` form reported the crash one round early (while the
// process was still alive and sending in its final round).
bool SyncSimulator::crashed(ProcessId p) const {
  return plans_[p].crash_at && round_ >= *plans_[p].crash_at;
}

ProcessSet SyncSimulator::planned_faulty() const {
  ProcessSet f(process_count());
  for (std::size_t p = 0; p < plans_.size(); ++p) {
    if (!plans_[p].empty()) f.insert(static_cast<int>(p));
  }
  return f;
}

bool SyncSimulator::send_dropped(ProcessId s, ProcessId d, Round r) {
  if (s == d) return false;  // own broadcast is always received (footnote 1)
  for (const auto& rule : plans_[s].send_omissions) {
    if (rule.covers(r, d) && (rule.probability >= 1.0 || rng_.chance(rule.probability))) {
      return true;
    }
  }
  return false;
}

bool SyncSimulator::receive_dropped(ProcessId s, ProcessId d, Round r) {
  if (s == d) return false;
  for (const auto& rule : plans_[d].receive_omissions) {
    if (rule.covers(r, s) && (rule.probability >= 1.0 || rng_.chance(rule.probability))) {
      return true;
    }
  }
  return false;
}

void SyncSimulator::run_rounds(int k) {
  if (config_.record_states && !config_.record_sends) {
    throw std::logic_error(
        "SyncConfig: record_states requires record_sends (payload capture "
        "lives in SendRecords)");
  }
  if (trace_ == nullptr) {
    if (config_.record_sends) {
      run_rounds_impl<false, true>(k);
    } else {
      run_rounds_impl<false, false>(k);
    }
  } else {
    if (config_.record_sends) {
      run_rounds_impl<true, true>(k);
    } else {
      run_rounds_impl<true, false>(k);
    }
  }
}

template <bool kTraced, bool kRecordSends>
void SyncSimulator::run_rounds_impl(int k) {
  const int n = process_count();
  const std::size_t ring = in_flight_slots_.size();
  // Lane-span instrumentation (installed by the obs layer; see SimLaneHooks)
  // read once per call: the hot loop pays one pointer test per lane-phase.
  const SimLaneHooks hooks = sim_lane_hooks();
  if (!started_) {
    started_ = true;
    has_send_rules_.resize(static_cast<std::size_t>(n));
    has_recv_rules_.resize(static_cast<std::size_t>(n));
    for (int p = 0; p < n; ++p) {
      has_send_rules_[p] = !plans_[p].send_omissions.empty();
      has_recv_rules_[p] = !plans_[p].receive_omissions.empty();
      any_rules_ = any_rules_ || has_send_rules_[p] || has_recv_rules_[p];
    }
  }

  // The previous run_rounds call closed its books by recording still-in-
  // flight messages as lost; this call extends the execution, so those
  // messages resolve normally below — retract the synthetic records.
  if (flushed_in_flight_ > 0 && k > 0) {
    auto& sends = history_.rounds.back().sends;
    sends.resize(sends.size() - static_cast<std::size_t>(flushed_in_flight_));
    flushed_in_flight_ = 0;
  }

  for (int step = 0; step < k; ++step) {
    const Round r = ++round_;
    RoundRecord rec;
    rec.round = r;
    rec.alive.resize(n);
    rec.halted.resize(n);
    rec.state.resize(n);
    rec.clock.resize(n);

    for (ProcessId p = 0; p < n; ++p) {
      const bool alive = !(plans_[p].crash_at && r >= *plans_[p].crash_at);
      rec.alive[p] = alive;
      if (alive) {
        rec.halted[p] = processes_[p]->halted();
        if (config_.record_states) rec.state[p] = processes_[p]->snapshot_state();
        rec.clock[p] = processes_[p]->round_counter();
      }
      // A crash that takes effect this round manifests the fault now.
      if (!alive) {
        mark_faulty(p, r, "crash");
      }
    }

    // Start-of-round §2.4 suspect sets, for processes exposing one.
    if (any_suspects_ && config_.record_states) {
      rec.suspects.resize(n);
      for (ProcessId p = 0; p < n; ++p) {
        if (!rec.alive[p]) continue;
        if (const auto* s = processes_[p]->suspect_set()) {
          rec.suspects[p].assign(s->begin(), s->end());
        }
      }
    }

    if constexpr (kTraced) {
      trace_->event(
          TraceEvent{.kind = TraceEventKind::kRoundBegin, .round = r, .data = {}});
    }

    causality_.begin_round();

    // Does the parallel engine run this round's phases?  Never when traced:
    // the tape must interleave per-message events in exact serial order, so
    // a traced run takes the serial path regardless of config.threads (the
    // tracing-transparency oracle compares traced vs untraced histories,
    // and the untraced parallel run is byte-identical to serial).
    bool par = false;
    if constexpr (!kTraced) par = lanes_ > 1;

    // One parallel phase: body(lane) on every engine lane, each lane
    // reporting a wall-clock span to the installed hooks (per-worker flight
    // rings) — wall-clock only, never an input to any fingerprint.
    const auto run_lanes = [&](auto&& body) {
      WorkerPool::shared().run_tasks(lanes_, [&](std::size_t lane) {
        const std::int64_t t0 = hooks.now != nullptr ? hooks.now() : 0;
        body(lane);
        if (hooks.span != nullptr) hooks.span(r, t0);
      });
    };

    // Resolve a message at its delivery round: crash / receive-omission /
    // delivery, recording the outcome in the current round's record.  The
    // recording-off instantiation repeats the branch structure without any
    // SendRecord so that configuration never constructs (or destroys) one
    // per message; RNG draw order is identical in both arms.
    auto resolve = [&](Message&& m, Round sent_round,
                       const ProcessSet& sender_influence,
                       std::int64_t flow_id) {
      if constexpr (kRecordSends) {
        SendRecord sr;
        sr.sender = m.sender;
        sr.dest = m.dest;
        sr.sent_round = sent_round;
        sr.delivery_round = r;
        if (config_.record_states) sr.payload = m.payload;
        if (!rec.alive[m.dest]) {
          sr.dest_crashed = true;
          if constexpr (kTraced) {
            trace_message(TraceEventKind::kDrop, r, m.sender, m.dest,
                          sent_round, "dest-crashed", flow_id);
          }
        } else if (has_recv_rules_[m.dest] &&
                   receive_dropped(m.sender, m.dest, r)) {
          sr.dropped_by_receiver = true;
          mark_faulty(m.dest, r, "receive-omission");
          if constexpr (kTraced) {
            trace_message(TraceEventKind::kDrop, r, m.sender, m.dest,
                          sent_round, "receive-omission", flow_id);
          }
        } else {
          sr.delivered = true;
          if constexpr (kTraced) {
            trace_message(TraceEventKind::kDeliver, r, m.sender, m.dest,
                          sent_round, "", flow_id);
          }
          causality_.deliver_snapshot(sender_influence, m.dest);
          inbox_[m.dest].push_back(std::move(m));
        }
        rec.sends.push_back(std::move(sr));
      } else {
        if (!rec.alive[m.dest]) {
          if constexpr (kTraced) {
            trace_message(TraceEventKind::kDrop, r, m.sender, m.dest,
                          sent_round, "dest-crashed", flow_id);
          }
        } else if (has_recv_rules_[m.dest] &&
                   receive_dropped(m.sender, m.dest, r)) {
          mark_faulty(m.dest, r, "receive-omission");
          if constexpr (kTraced) {
            trace_message(TraceEventKind::kDrop, r, m.sender, m.dest,
                          sent_round, "receive-omission", flow_id);
          }
        } else {
          if constexpr (kTraced) {
            trace_message(TraceEventKind::kDeliver, r, m.sender, m.dest,
                          sent_round, "", flow_id);
          }
          causality_.deliver_snapshot(sender_influence, m.dest);
          inbox_[m.dest].push_back(std::move(m));
        }
      }
    };

    // Messages from earlier rounds whose delivery jitter expires now.  A
    // slot is fully drained before any message can land in it again (delay
    // is at most max_extra_delay = ring - 1).  This runs before the send
    // phase — process code emits no observable events, draws no randomness
    // and reads no history, so draining first is behavior-identical to the
    // old drain-after-send order while letting the send phase stream.
    {
      FlightSlot& due = in_flight_slots_[static_cast<std::size_t>(r) % ring];
      for (std::size_t i = 0; i < due.used; ++i) {
        InFlight& flight = due.pool[i];
        resolve(std::move(flight.message), flight.sent_round,
                flight.sender_influence, flight.flow_id);
      }
      in_flight_count_ -= static_cast<int>(due.used);
      due.used = 0;  // entries stay constructed; re-arming recycles them
    }

    // Can this round take the everything-delivers fast path?  Requires: no
    // recording or tracing (nothing to emit per message), zero jitter with
    // nothing in flight (every send resolves now), no omission rules in any
    // plan (no drops, no RNG draws), and every process alive and unhalted
    // at round start (the only liveness facts the send/resolve path reads).
    // Under those facts the slow path below delivers every message in the
    // identical sender-then-destination order with zero side channels, so
    // the fast path is behavior-identical by construction.
    bool fast_round = false;
    if constexpr (!kTraced && !kRecordSends) {
      if (config_.max_extra_delay == 0 && in_flight_count_ == 0 &&
          !any_rules_) {
        fast_round = true;
        for (ProcessId p = 0; p < n; ++p) {
          if (!rec.alive[p] || rec.halted[p]) {
            fast_round = false;
            break;
          }
        }
      }
    }

    bool fast_delivered = false;
    if (fast_round) {
      // Collection: each sender logs its traffic (broadcasts stored once).
      fast_log_.clear();
      if (par) {
        // Lanes collect contiguous sender ranges into private logs;
        // concatenating in lane order reproduces the serial id-ascending
        // log exactly (each lane walks its own range in id order).
        run_lanes([&](std::size_t lane) {
          EngineLane& el = engine_lanes_[lane];
          el.fast_log.clear();
          const auto [lo, hi] =
              WorkerPool::split(static_cast<std::size_t>(n), lanes_, lane);
          for (std::size_t p = lo; p < hi; ++p) {
            FastOutboxImpl out(static_cast<ProcessId>(p), n, &el.fast_log);
            processes_[p]->begin_round(out);
          }
        });
        for (EngineLane& el : engine_lanes_) {
          for (FastSend& e : el.fast_log) fast_log_.push_back(std::move(e));
          el.fast_log.clear();
        }
      } else {
        for (ProcessId p = 0; p < n; ++p) {
          FastOutboxImpl out(p, n, &fast_log_);
          processes_[p]->begin_round(out);
        }
      }
      bool broadcast_only = true;
      for (const FastSend& e : fast_log_) {
        if (e.dest != kBroadcastDest) {
          broadcast_only = false;
          break;
        }
      }
      if (broadcast_only) {
        // Destination-major delivery: every destination receives the same
        // sender-ascending broadcast sequence, so ONE n-sized scratch
        // inbox serves all n transitions — only the 4-byte dest field is
        // retargeted per destination, keeping the delivery working set
        // cache-resident instead of materializing n^2 Messages.  Within a
        // round the closure unions commute (send snapshots are pinned by
        // begin_round), so dest-major instead of sender-major delivery
        // leaves influence_, and therefore every later observable,
        // unchanged.
        fast_inbox_.clear();
        for (FastSend& e : fast_log_) {
          fast_inbox_.push_back(Message{e.sender, 0, std::move(e.payload)});
        }
        if (par) {
          // Destination-partitioned delivery: each lane takes a private
          // copy of the scratch inbox (COW payloads — refcount bumps, not
          // deep copies) because the dest field is retargeted per
          // destination and cannot be shared across lanes.  Closure
          // updates go through the lane-local API; a destination's
          // saturation within the round can only come from deliveries to
          // it, all of which this lane performs, so saturated_lane sees
          // exactly what the serial loop's saturated() would.
          run_lanes([&](std::size_t lane) {
            EngineLane& el = engine_lanes_[lane];
            el.fast_inbox = fast_inbox_;
            const auto [lo, hi] =
                WorkerPool::split(static_cast<std::size_t>(n), lanes_, lane);
            for (std::size_t qi = lo; qi < hi; ++qi) {
              const ProcessId q = static_cast<ProcessId>(qi);
              for (Message& m : el.fast_inbox) m.dest = q;
              if (!causality_.saturated_lane(q, el.causality)) {
                for (const Message& m : el.fast_inbox) {
                  causality_.deliver_snapshot_lane(
                      causality_.send_snapshot(m.sender), q, el.causality);
                }
              }
              if (!processes_[q]->halted()) {
                processes_[q]->end_round(el.fast_inbox);
              }
            }
          });
        } else {
          for (ProcessId q = 0; q < n; ++q) {
            for (Message& m : fast_inbox_) m.dest = q;
            if (!causality_.saturated(q)) {
              for (const Message& m : fast_inbox_) {
                causality_.deliver_snapshot(causality_.send_snapshot(m.sender),
                                            q);
              }
            }
            // A process that halted during its own begin_round still gets
            // its deliveries counted by the closure but takes no
            // transition, exactly as the receive phase below would treat
            // it.
            if (!processes_[q]->halted()) {
              processes_[q]->end_round(fast_inbox_);
            }
          }
        }
        fast_delivered = true;
      } else {
        // Mixed targeted sends: replay the log in send order, streaming
        // each delivery into the per-destination inboxes; the receive
        // phase below runs as usual.
        for (FastSend& e : fast_log_) {
          const ProcessSet& snap = causality_.send_snapshot(e.sender);
          if (e.dest == kBroadcastDest) {
            for (ProcessId q = 0; q < n; ++q) {
              causality_.deliver_snapshot(snap, q);
              inbox_[q].push_back(Message{e.sender, q, e.payload});
            }
          } else {
            causality_.deliver_snapshot(snap, e.dest);
            inbox_[e.dest].push_back(
                Message{e.sender, e.dest, std::move(e.payload)});
          }
        }
      }
    } else if (par) {
      // Send phase, parallel: senders are processed in blocks, bounding the
      // collected scratch at O(block * n) messages (the serial streaming
      // path holds O(n)).  Within a block: (C1) lanes run begin_round for
      // contiguous sender subranges into private outboxes; (C2) a SERIAL
      // fate pass walks the collected messages in exact sender-major order
      // — lane concatenation order IS sender order, since lanes own
      // ascending contiguous ranges — so every RNG draw, fault
      // manifestation, in-flight enqueue and SendRecord slot assignment
      // replicates the serial path bit-for-bit; (C3) lanes fill their
      // pre-assigned record slots, apply lane-local closure updates and
      // push inbox deliveries for the destinations they own.
      const int block = static_cast<int>(std::max(32u, 4u * lanes_));
      for (int s0 = 0; s0 < n; s0 += block) {
        const int s1 = std::min(n, s0 + block);
        run_lanes([&](std::size_t lane) {
          EngineLane& el = engine_lanes_[lane];
          el.outbox.clear();
          const auto [lo, hi] = WorkerPool::split(
              static_cast<std::size_t>(s1 - s0), lanes_, lane);
          for (std::size_t i = lo; i < hi; ++i) {
            const ProcessId p =
                static_cast<ProcessId>(s0 + static_cast<int>(i));
            if (!rec.alive[p] || processes_[p]->halted()) continue;
            OutboxImpl out(p, n, &el.outbox);
            processes_[p]->begin_round(out);
          }
        });

        const std::size_t base = rec.sends.size();
        std::size_t slots = 0;
        dropped_sends_.clear();
        for (unsigned lane = 0; lane < lanes_; ++lane) {
          for (Message& m : engine_lanes_[lane].outbox) {
            if (has_send_rules_[m.sender] &&
                send_dropped(m.sender, m.dest, r)) {
              if constexpr (kRecordSends) {
                dropped_sends_.emplace_back(
                    &m, static_cast<std::uint32_t>(slots++));
              }
              mark_faulty(m.sender, r, "send-omission");
              continue;
            }
            const int delay =
                (config_.max_extra_delay > 0 && m.sender != m.dest)
                    ? static_cast<int>(
                          rng_.uniform(0, config_.max_extra_delay))
                    : 0;
            if (delay != 0) {
              FlightSlot& slot = in_flight_slots_[static_cast<std::size_t>(
                                                      r + delay) %
                                                  ring];
              if (slot.used < slot.pool.size()) {
                InFlight& f = slot.pool[slot.used];
                f.sender_influence = causality_.send_snapshot(m.sender);
                f.message = std::move(m);
                f.sent_round = r;
                f.flow_id = -1;
              } else {
                slot.pool.push_back(
                    InFlight{std::move(m), r,
                             causality_.send_snapshot(m.sender), -1});
              }
              ++slot.used;
              ++in_flight_count_;
              continue;
            }
            std::uint8_t fate = kFateDelivered;
            if (!rec.alive[m.dest]) {
              fate = kFateDestCrashed;
            } else if (has_recv_rules_[m.dest] &&
                       receive_dropped(m.sender, m.dest, r)) {
              fate = kFateRecvDropped;
              mark_faulty(m.dest, r, "receive-omission");
            }
            std::uint32_t slot_index =
                std::numeric_limits<std::uint32_t>::max();
            if constexpr (kRecordSends) {
              slot_index = static_cast<std::uint32_t>(slots++);
            }
            engine_lanes_[dest_lane_[m.dest]].deliveries.push_back(
                EngineLane::Delivery{&m, slot_index, fate});
          }
        }

        // C3: size the block's record tail, fill the sender-dropped
        // records serially (they were never bucketed to a lane), then let
        // lanes fill their slots and deliver.  A destination's messages
        // all live in one lane and each lane's bucket is already in global
        // send order, so inbox contents and order match the serial path.
        if constexpr (kRecordSends) {
          rec.sends.resize(base + slots);
          for (const auto& [message, slot_index] : dropped_sends_) {
            SendRecord& sr = rec.sends[base + slot_index];
            sr.sender = message->sender;
            sr.dest = message->dest;
            sr.sent_round = r;
            sr.delivery_round = r;
            if (config_.record_states) sr.payload = message->payload;
            sr.dropped_by_sender = true;
          }
        }
        run_lanes([&](std::size_t lane) {
          EngineLane& el = engine_lanes_[lane];
          for (const EngineLane::Delivery& d : el.deliveries) {
            Message& m = *d.message;
            if constexpr (kRecordSends) {
              SendRecord& sr = rec.sends[base + d.slot];
              sr.sender = m.sender;
              sr.dest = m.dest;
              sr.sent_round = r;
              sr.delivery_round = r;
              if (config_.record_states) sr.payload = m.payload;
              if (d.fate == kFateDestCrashed) {
                sr.dest_crashed = true;
              } else if (d.fate == kFateRecvDropped) {
                sr.dropped_by_receiver = true;
              } else {
                sr.delivered = true;
              }
            }
            if (d.fate == kFateDelivered) {
              causality_.deliver_snapshot_lane(
                  causality_.send_snapshot(m.sender), m.dest, el.causality);
              inbox_[m.dest].push_back(std::move(m));
            }
          }
          el.deliveries.clear();
        });
      }
    } else {
      // Send phase, streamed sender-by-sender in id order: each live,
      // non-halted process fills the shared outbox scratch and its messages
      // resolve immediately (send-omission faults apply now; remote messages
      // may be delayed, self-deliveries never are).  Message order, RNG draw
      // order and trace order are exactly the old collect-then-resolve
      // order's, without ever materializing all n^2 messages.
      for (ProcessId p = 0; p < n; ++p) {
        if (!rec.alive[p] || processes_[p]->halted()) continue;
        outgoing_.clear();
        OutboxImpl out(p, n, &outgoing_);
        processes_[p]->begin_round(out);
        for (auto& m : outgoing_) {
          std::int64_t fid = -1;
          if constexpr (kTraced) {
            fid = next_flow_id_++;
            trace_message(TraceEventKind::kSend, r, m.sender, m.dest, 0, "",
                          fid);
          }
          if (has_send_rules_[m.sender] && send_dropped(m.sender, m.dest, r)) {
            if constexpr (kRecordSends) {
              SendRecord sr;
              sr.sender = m.sender;
              sr.dest = m.dest;
              sr.sent_round = r;
              sr.delivery_round = r;
              if (config_.record_states) sr.payload = m.payload;
              sr.dropped_by_sender = true;
              rec.sends.push_back(std::move(sr));
            }
            mark_faulty(m.sender, r, "send-omission");
            if constexpr (kTraced) {
              trace_message(TraceEventKind::kDrop, r, m.sender, m.dest, r,
                            "send-omission", fid);
            }
            continue;
          }
          const int delay =
              (config_.max_extra_delay > 0 && m.sender != m.dest)
                  ? static_cast<int>(rng_.uniform(0, config_.max_extra_delay))
                  : 0;
          if (delay == 0) {
            resolve(std::move(m), r, causality_.send_snapshot(m.sender), fid);
          } else {
            FlightSlot& slot =
                in_flight_slots_[static_cast<std::size_t>(r + delay) % ring];
            if (slot.used < slot.pool.size()) {
              // Recycle a drained entry: assignment reuses its ProcessSet
              // heap words and Message storage instead of reallocating.
              InFlight& f = slot.pool[slot.used];
              f.sender_influence = causality_.send_snapshot(m.sender);
              f.message = std::move(m);
              f.sent_round = r;
              f.flow_id = fid;
            } else {
              slot.pool.push_back(InFlight{std::move(m), r,
                                           causality_.send_snapshot(m.sender),
                                           fid});
            }
            ++slot.used;
            ++in_flight_count_;
          }
        }
      }
    }

    // Receive/transition phase (already folded into the destination-major
    // loop on a fast broadcast-only round).  The parallel arm partitions
    // destinations by lane and mirrors the serial loop exactly; every
    // inbox was filled identically (drain order, then block order), so
    // each transition sees the same message sequence either way.
    if (par && !fast_delivered) {
      run_lanes([&](std::size_t lane) {
        const auto [lo, hi] =
            WorkerPool::split(static_cast<std::size_t>(n), lanes_, lane);
        for (std::size_t pi = lo; pi < hi; ++pi) {
          const ProcessId p = static_cast<ProcessId>(pi);
          auto& in = inbox_[p];
          if (!rec.alive[p] || processes_[p]->halted()) {
            in.clear();
            continue;
          }
          if (config_.max_extra_delay > 0) {
            const auto by_sender = [](const Message& a, const Message& b) {
              return a.sender < b.sender;
            };
            if (!std::is_sorted(in.begin(), in.end(), by_sender)) {
              std::stable_sort(in.begin(), in.end(), by_sender);
            }
          }
          processes_[p]->end_round(in);
          in.clear();
        }
      });
    } else {
      for (ProcessId p = 0; !fast_delivered && p < n; ++p) {
        auto& in = inbox_[p];
        if (!rec.alive[p] || processes_[p]->halted()) {
          in.clear();
          continue;
        }
        // Deliveries land in send order, which with zero jitter is strictly
        // sender-ascending (the send phase streams senders in id order);
        // only a jittered configuration can interleave rounds, so only then
        // does the order need checking at all.
        if (config_.max_extra_delay > 0) {
          const auto by_sender = [](const Message& a, const Message& b) {
            return a.sender < b.sender;
          };
          if (!std::is_sorted(in.begin(), in.end(), by_sender)) {
            std::stable_sort(in.begin(), in.end(), by_sender);
          }
        }
        processes_[p]->end_round(in);
        in.clear();
      }
    }

    // Fold lane-local causality staleness back into the shared bookkeeping
    // (fixed lane order; unions commute, so merge order is immaterial)
    // before the coterie reads it and the next begin_round consumes it.
    if (par) {
      for (EngineLane& el : engine_lanes_) {
        causality_.merge_lane(el.causality);
      }
    }

    // Post-transition observations: adopted round variables and Π⁺
    // suspect-set deltas.
    if constexpr (kTraced) {
      for (ProcessId p = 0; p < n; ++p) {
        if (!rec.alive[p] || processes_[p]->halted()) continue;
        if (const auto c = processes_[p]->round_counter()) {
          trace_->event(TraceEvent{.kind = TraceEventKind::kClockAdopt,
                                   .round = r,
                                   .process = p,
                                   .aux = *c,
                                   .data = {}});
        }
        if (const auto* s = processes_[p]->suspect_set();
            s != nullptr && *s != last_suspects_[p]) {
          Value::Array added, removed;
          for (ProcessId q : *s) {
            if (!last_suspects_[p].contains(q)) added.push_back(Value(q));
          }
          for (ProcessId q : last_suspects_[p]) {
            if (!s->contains(q)) removed.push_back(Value(q));
          }
          Value delta;
          delta["added"] = Value(std::move(added));
          delta["removed"] = Value(std::move(removed));
          trace_->event(TraceEvent{.kind = TraceEventKind::kSuspectDelta,
                                   .round = r,
                                   .process = p,
                                   .data = std::move(delta)});
          last_suspects_[p] = *s;
        }
      }
    }

    rec.faulty_by_now = fault_manifested_;
    correct_.clear();
    for (int p = 0; p < n; ++p) {
      if (!fault_manifested_[p]) correct_.insert(p);
    }
    rec.coterie = causality_.coterie(correct_).to_bools();
    if constexpr (kTraced) {
      if (history_.rounds.empty() ||
          history_.rounds.back().coterie != rec.coterie) {
        Value::Array members;
        for (int p = 0; p < n; ++p) {
          if (rec.coterie[p]) members.push_back(Value(p));
        }
        trace_->event(TraceEvent{.kind = TraceEventKind::kCoterieChange,
                                 .round = r,
                                 .data = Value(std::move(members))});
      }
      trace_->event(TraceEvent{.kind = TraceEventKind::kRoundEnd, .round = r, .data = {}});
    }
    history_.rounds.push_back(std::move(rec));
  }

  // Jittered messages still in flight when the run stops used to vanish —
  // no SendRecord, no trace event — so history/trace send accounting
  // disagreed with what was actually sent.  Flush them into the final
  // round's record as lost_in_flight drops (see SendRecord; retracted above
  // if the execution is extended).  The trace drop is not retractable: an
  // extended traced run re-resolves the same flow id, which is the tape's
  // honest record of the observer closing and reopening the run.  Slots are
  // walked in delivery-round order (the order the old sorted map yielded).
  if (k > 0 && in_flight_count_ > 0 && !history_.rounds.empty()) {
    [[maybe_unused]] auto& sends = history_.rounds.back().sends;
    for (std::size_t d = 1; d < ring; ++d) {
      const Round delivery_round = round_ + static_cast<Round>(d);
      const FlightSlot& slot =
          in_flight_slots_[static_cast<std::size_t>(delivery_round) % ring];
      for (std::size_t i = 0; i < slot.used; ++i) {
        const InFlight& flight = slot.pool[i];
        if constexpr (kRecordSends) {
          SendRecord sr;
          sr.sender = flight.message.sender;
          sr.dest = flight.message.dest;
          sr.sent_round = flight.sent_round;
          sr.delivery_round = delivery_round;
          if (config_.record_states) sr.payload = flight.message.payload;
          sr.lost_in_flight = true;
          sends.push_back(std::move(sr));
          ++flushed_in_flight_;
        }
        if constexpr (kTraced) {
          trace_message(TraceEventKind::kDrop, round_, flight.message.sender,
                        flight.message.dest, flight.sent_round,
                        "in-flight-at-end", flight.flow_id);
        }
      }
    }
  }
}

}  // namespace ftss
