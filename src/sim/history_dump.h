// Human-readable rendering of recorded histories — the external observer's
// console.  Used by examples and invaluable when debugging adversarial
// schedules; kept in the library so downstream users get it too.
#pragma once

#include <iosfwd>
#include <string>

#include "sim/history.h"

namespace ftss {

struct DumpOptions {
  Round from_round = 1;
  Round to_round = 0;        // 0 = end of history
  bool show_coterie = true;
  bool show_faulty = true;
  bool show_sends = false;   // per-message lines (verbose): fate + cause,
                             // with "(sent @r, delay k)" for jittered ones
  bool show_suspects = false;  // per-process §2.4 suspect sets (Π⁺ runs;
                               // requires SyncConfig.record_states)
};

// Renders one row per round: clocks of live processes, halted/crashed
// markers, the coterie, and newly-manifested faults.
void dump_history(std::ostream& os, const History& h, DumpOptions options = {});

// Convenience: dump to a string (tests, logging).
std::string history_to_string(const History& h, DumpOptions options = {});

}  // namespace ftss
