#include "check/plan.h"

#include <algorithm>
#include <sstream>

#include "sim/corrupt.h"

namespace ftss {

namespace {

const char* fault_kind_name(FaultSpec::Kind kind) {
  switch (kind) {
    case FaultSpec::Kind::kCrash:
      return "crash";
    case FaultSpec::Kind::kSendOmission:
      return "send-omission";
    default:
      return "receive-omission";
  }
}

std::optional<FaultSpec::Kind> parse_fault_kind(const std::string& s) {
  if (s == "crash") return FaultSpec::Kind::kCrash;
  if (s == "send-omission") return FaultSpec::Kind::kSendOmission;
  if (s == "receive-omission") return FaultSpec::Kind::kReceiveOmission;
  return std::nullopt;
}

const char* corruption_kind_name(CorruptionSpec::Kind kind) {
  return kind == CorruptionSpec::Kind::kClock ? "clock" : "garbage";
}

std::optional<CorruptionSpec::Kind> parse_corruption_kind(const std::string& s) {
  if (s == "clock") return CorruptionSpec::Kind::kClock;
  if (s == "garbage") return CorruptionSpec::Kind::kGarbage;
  return std::nullopt;
}

}  // namespace

FaultPlan TrialPlan::fault_plan_for(ProcessId p) const {
  FaultPlan plan;
  for (const auto& f : faults) {
    if (f.process != p) continue;
    switch (f.kind) {
      case FaultSpec::Kind::kCrash:
        plan.crash_at = plan.crash_at ? std::min(*plan.crash_at, f.onset)
                                      : f.onset;
        break;
      case FaultSpec::Kind::kSendOmission:
        plan.send_omissions.push_back(
            OmissionRule{.from_round = f.onset,
                         .to_round = f.until,
                         .peer = f.peer,
                         .probability = f.permille / 1000.0});
        break;
      case FaultSpec::Kind::kReceiveOmission:
        plan.receive_omissions.push_back(
            OmissionRule{.from_round = f.onset,
                         .to_round = f.until,
                         .peer = f.peer,
                         .probability = f.permille / 1000.0});
        break;
    }
  }
  return plan;
}

Value corruption_value(const CorruptionSpec& spec) {
  if (spec.kind == CorruptionSpec::Kind::kClock) {
    return clock_corruption(spec.magnitude);
  }
  Rng rng(spec.value_seed);
  return random_value(rng, spec.magnitude, /*max_depth=*/4);
}

Value TrialPlan::to_value() const {
  Value v;
  v["seed"] = Value(static_cast<std::int64_t>(trial_seed));
  v["mode"] = Value(ftss::to_string(mode));
  v["weakened"] = Value(ftss::to_string(weakened));
  if (!protocol.empty()) v["protocol"] = Value(protocol);
  v["n"] = Value(static_cast<std::int64_t>(n));
  v["f"] = Value(static_cast<std::int64_t>(f_budget));
  v["delay"] = Value(static_cast<std::int64_t>(max_extra_delay));
  v["rounds"] = Value(static_cast<std::int64_t>(rounds));
  Value::Array fs;
  for (const auto& f : faults) {
    Value e;
    e["p"] = Value(static_cast<std::int64_t>(f.process));
    e["kind"] = Value(fault_kind_name(f.kind));
    e["onset"] = Value(f.onset);
    if (f.until != FaultSpec::kNoEnd) e["until"] = Value(f.until);
    if (f.peer != OmissionRule::kAllPeers) {
      e["peer"] = Value(static_cast<std::int64_t>(f.peer));
    }
    if (f.permille != 1000) e["permille"] = Value(static_cast<std::int64_t>(f.permille));
    fs.push_back(std::move(e));
  }
  v["faults"] = Value(std::move(fs));
  Value::Array cs;
  for (const auto& c : corruptions) {
    Value e;
    e["p"] = Value(static_cast<std::int64_t>(c.process));
    e["kind"] = Value(corruption_kind_name(c.kind));
    e["magnitude"] = Value(c.magnitude);
    if (c.kind == CorruptionSpec::Kind::kGarbage) {
      e["value_seed"] = Value(static_cast<std::int64_t>(c.value_seed));
    }
    cs.push_back(std::move(e));
  }
  v["corruptions"] = Value(std::move(cs));
  return v;
}

std::optional<TrialPlan> TrialPlan::from_value(const Value& v) {
  if (!v.is_map()) return std::nullopt;
  TrialPlan plan;
  plan.trial_seed = static_cast<std::uint64_t>(v.at("seed").int_or(1));
  auto mode = parse_trial_mode(v.at("mode").string_or(""));
  auto weakened = parse_weakened_kind(v.at("weakened").string_or("none"));
  if (!mode || !weakened) return std::nullopt;
  plan.mode = *mode;
  plan.weakened = *weakened;
  plan.protocol = v.at("protocol").string_or("");
  plan.n = static_cast<int>(v.at("n").int_or(0));
  plan.f_budget = static_cast<int>(v.at("f").int_or(1));
  plan.max_extra_delay = static_cast<int>(v.at("delay").int_or(0));
  plan.rounds = static_cast<int>(v.at("rounds").int_or(0));
  if (plan.n < 1 || plan.n > 128 || plan.rounds < 1 || plan.rounds > 100000 ||
      plan.max_extra_delay < 0 || plan.max_extra_delay > 64) {
    return std::nullopt;
  }
  const Value& fs = v.at("faults");
  if (fs.is_array()) {
    for (const auto& e : fs.as_array()) {
      FaultSpec f;
      f.process = static_cast<ProcessId>(e.at("p").int_or(-1));
      auto kind = parse_fault_kind(e.at("kind").string_or(""));
      if (!kind || f.process < 0 || f.process >= plan.n) return std::nullopt;
      f.kind = *kind;
      f.onset = e.at("onset").int_or(1);
      f.until = e.contains("until") ? e.at("until").int_or(FaultSpec::kNoEnd)
                                    : FaultSpec::kNoEnd;
      f.peer = static_cast<ProcessId>(
          e.contains("peer") ? e.at("peer").int_or(OmissionRule::kAllPeers)
                             : OmissionRule::kAllPeers);
      f.permille = static_cast<int>(e.at("permille").int_or(1000));
      if (f.onset < 1 || f.until < f.onset || f.permille < 1 ||
          f.permille > 1000) {
        return std::nullopt;
      }
      plan.faults.push_back(f);
    }
  }
  const Value& cs = v.at("corruptions");
  if (cs.is_array()) {
    for (const auto& e : cs.as_array()) {
      CorruptionSpec c;
      c.process = static_cast<ProcessId>(e.at("p").int_or(-1));
      auto kind = parse_corruption_kind(e.at("kind").string_or(""));
      if (!kind || c.process < 0 || c.process >= plan.n) return std::nullopt;
      c.kind = *kind;
      c.magnitude = e.at("magnitude").int_or(0);
      c.value_seed = static_cast<std::uint64_t>(e.at("value_seed").int_or(0));
      plan.corruptions.push_back(c);
    }
  }
  return plan;
}

std::string TrialPlan::describe() const {
  std::ostringstream os;
  os << "trial seed=" << trial_seed << " mode=" << ftss::to_string(mode);
  if (weakened != WeakenedKind::kNone) {
    os << " weakened=" << ftss::to_string(weakened);
  }
  if (mode == TrialMode::kCompiled) {
    os << " protocol=" << protocol << " f=" << f_budget;
  }
  os << " n=" << n << " delay=" << max_extra_delay << " rounds=" << rounds
     << "\n";
  for (const auto& f : faults) {
    os << "  fault p" << f.process << ": " << fault_kind_name(f.kind);
    if (f.kind == FaultSpec::Kind::kCrash) {
      os << " at round " << f.onset;
    } else {
      os << " rounds [" << f.onset << ", ";
      if (f.until == FaultSpec::kNoEnd) {
        os << "inf";
      } else {
        os << f.until;
      }
      os << "]";
      if (f.peer != OmissionRule::kAllPeers) os << " peer " << f.peer;
      if (f.permille != 1000) os << " p=" << f.permille / 1000.0;
    }
    os << "\n";
  }
  for (const auto& c : corruptions) {
    os << "  corrupt p" << c.process << ": ";
    if (c.kind == CorruptionSpec::Kind::kClock) {
      os << "c_p := " << c.magnitude;
    } else {
      os << "garbage(seed=" << c.value_seed << ", magnitude=" << c.magnitude
         << ") = " << corruption_value(c).to_string();
    }
    os << "\n";
  }
  if (faults.empty() && corruptions.empty()) os << "  (no adversary)\n";
  return os.str();
}

const char* to_string(TrialMode mode) {
  switch (mode) {
    case TrialMode::kRoundAgreementSync:
      return "round-agreement";
    case TrialMode::kRoundAgreementJitter:
      return "round-agreement-jitter";
    default:
      return "compiled";
  }
}

const char* to_string(WeakenedKind kind) {
  switch (kind) {
    case WeakenedKind::kNone:
      return "none";
    case WeakenedKind::kRoundAgreementMaxRule:
      return "ra-max";
    default:
      return "no-tags";
  }
}

std::optional<TrialMode> parse_trial_mode(const std::string& s) {
  if (s == "round-agreement") return TrialMode::kRoundAgreementSync;
  if (s == "round-agreement-jitter") return TrialMode::kRoundAgreementJitter;
  if (s == "compiled") return TrialMode::kCompiled;
  return std::nullopt;
}

std::optional<WeakenedKind> parse_weakened_kind(const std::string& s) {
  if (s == "none") return WeakenedKind::kNone;
  if (s == "ra-max") return WeakenedKind::kRoundAgreementMaxRule;
  if (s == "no-tags") return WeakenedKind::kCompilerNoRoundTags;
  return std::nullopt;
}

}  // namespace ftss
