#include "check/weakened.h"

#include <algorithm>

#include "util/numeric.h"

namespace ftss {

void WeakRoundAgreementProcess::begin_round(Outbox& out) {
  Value m;
  m["type"] = Value("ROUND");
  m["p"] = Value(static_cast<std::int64_t>(self_));
  m["c"] = Value(c_);
  out.broadcast(std::move(m));
}

void WeakRoundAgreementProcess::end_round(
    const std::vector<Message>& delivered) {
  // The bug under test: adopt max(R) with NO +1.
  bool any = false;
  Round best = c_;
  for (const auto& m : delivered) {
    const Value& c = m.payload.at("c");
    if (!c.is_int()) continue;
    const Round t = clamp_round_tag(c.as_int());
    best = any ? std::max(best, t) : t;
    any = true;
  }
  c_ = any ? best : clamp_round_tag(c_);
}

Value WeakRoundAgreementProcess::snapshot_state() const {
  Value s;
  s["c"] = Value(c_);
  return s;
}

void WeakRoundAgreementProcess::restore_state(const Value& state) {
  const Value& c = state.at("c");
  c_ = clamp_restored_round(
      c.is_int() ? c.as_int() : static_cast<Round>(state.hash() % 1000003));
}

}  // namespace ftss
