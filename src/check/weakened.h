// Deliberately broken protocol variants used to validate the explorer.
//
// An adversary explorer whose oracles never fire is indistinguishable from
// one that checks nothing.  These variants carry known, paper-relevant bugs;
// tests/check_explorer_test.cc asserts the explorer catches them and shrinks
// each failure to a minimal reproducer.
#pragma once

#include "sim/process.h"

namespace ftss {

// Figure 1 with the rule weakened from max(R)+1 to max(R): clocks converge
// to the maximum but never advance, so Assumption 1's rate clause
// (c^{r+1} = c^r + 1) fails in every round — even with no faults and no
// corruption at all.  The Theorem 3 oracle must reject every execution.
class WeakRoundAgreementProcess : public SyncProcess {
 public:
  explicit WeakRoundAgreementProcess(ProcessId self, Round initial_round = 1)
      : self_(self), c_(initial_round) {}

  void begin_round(Outbox& out) override;
  void end_round(const std::vector<Message>& delivered) override;

  Value snapshot_state() const override;
  void restore_state(const Value& state) override;
  std::optional<Round> round_counter() const override { return c_; }

 private:
  ProcessId self_;
  Round c_;
};

}  // namespace ftss
