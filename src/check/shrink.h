// Greedy TrialPlan shrinking against an arbitrary failure predicate.
//
// The explorer shrinks oracle violations; the conformance harness shrinks
// cross-engine divergences.  Both want the same reduction moves (drop a
// fault, drop a corruption, zero the jitter, shorten windows and the run,
// derandomize drop probabilities, shrink magnitudes and onsets), so the
// candidate generator and the greedy fixpoint loop live here, parameterized
// only by "does this smaller plan still fail the same way?".
#pragma once

#include <functional>
#include <vector>

#include "check/plan.h"

namespace ftss {

// Every one-step reduction of `plan`, in a fixed (deterministic) order of
// decreasing expected payoff: structural deletions first, then parameter
// simplifications.
std::vector<TrialPlan> shrink_candidates(const TrialPlan& plan);

struct PlanShrinkResult {
  TrialPlan plan;        // minimal plan still failing per the predicate
  int steps_tried = 0;   // candidate executions spent
  int steps_accepted = 0;
};

// Greedy shrink to a fixpoint (or until `budget` candidate evaluations are
// spent).  `still_fails` must return true iff the candidate reproduces the
// original failure — callers encode their own "same failure mode" rule
// (oracle-set subset for the explorer, divergence-kind subset for the
// conformance harness) so shrinking cannot drift into a different bug.
PlanShrinkResult shrink_plan(
    const TrialPlan& start,
    const std::function<bool(const TrialPlan&)>& still_fails, int budget);

}  // namespace ftss
