#include "check/trial_build.h"

#include "check/weakened.h"
#include "core/compiler.h"
#include "core/round_agreement.h"
#include "protocols/suite.h"

namespace ftss {

std::vector<std::unique_ptr<SyncProcess>> build_trial_processes(
    const TrialPlan& plan, std::string* error) {
  std::vector<std::unique_ptr<SyncProcess>> procs;
  if (plan.mode == TrialMode::kCompiled) {
    const ProtocolSpec* spec = find_protocol(plan.protocol);
    if (spec == nullptr) {
      if (error != nullptr) *error = "unknown protocol: " + plan.protocol;
      return procs;
    }
    CompilerOptions compiler_options;
    compiler_options.use_round_tags =
        plan.weakened != WeakenedKind::kCompilerNoRoundTags;
    procs = compile_protocol(plan.n, spec->make(plan.f_budget),
                             spec->inputs(plan.n), compiler_options);
  } else {
    const bool weak = plan.weakened == WeakenedKind::kRoundAgreementMaxRule;
    for (ProcessId p = 0; p < plan.n; ++p) {
      if (weak) {
        procs.push_back(std::make_unique<WeakRoundAgreementProcess>(p));
      } else {
        procs.push_back(std::make_unique<RoundAgreementProcess>(p));
      }
    }
  }
  return procs;
}

void configure_trial(SyncSimulator& sim, const TrialPlan& plan) {
  for (const auto& c : plan.corruptions) {
    sim.corrupt_state(c.process, corruption_value(c));
  }
  for (ProcessId p = 0; p < plan.n; ++p) {
    FaultPlan fp = plan.fault_plan_for(p);
    if (!fp.empty()) sim.set_fault_plan(p, std::move(fp));
  }
}

}  // namespace ftss
