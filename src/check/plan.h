// Replayable adversary trial plans.
//
// A TrialPlan is the complete, declarative description of one adversarial
// trial: which system runs (Figure 1 round agreement, the same under
// delivery jitter, or a Figure 3 compiled protocol), which processes fail
// and how (crash / send-omission / receive-omission with onset rounds,
// windows and drop probabilities), which systemic corruptions are injected
// (random garbage or a targeted round-counter value), plus the simulator
// seed that fixes every remaining random choice (delivery jitter,
// probabilistic drops).  A plan therefore replays bit-for-bit: the explorer
// prints shrunk failing plans as JSON, and tests/check_regressions_test.cc
// pins them verbatim.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "sim/fault.h"
#include "sim/types.h"
#include "util/value.h"

namespace ftss {

enum class TrialMode {
  kRoundAgreementSync,    // Figure 1, perfectly synchronous (Theorem 3 oracle)
  kRoundAgreementJitter,  // Figure 1 under delivery jitter (EXP10 oracle)
  kCompiled,              // Figure 3 compiled protocol (Theorem 4 + Σ⁺ oracle)
};

// Deliberate protocol weakenings used to validate that the explorer's
// oracles have teeth: each must be caught and shrunk to a tiny reproducer.
enum class WeakenedKind {
  kNone,
  kRoundAgreementMaxRule,  // Figure 1 adopting max instead of max+1
  kCompilerNoRoundTags,    // Figure 3 with the ROUND-tag filter disabled
};

struct FaultSpec {
  static constexpr Round kNoEnd = std::numeric_limits<Round>::max();

  enum class Kind { kCrash, kSendOmission, kReceiveOmission };

  ProcessId process = 0;
  Kind kind = Kind::kCrash;
  Round onset = 1;       // crash round, or first round of the omission window
  Round until = kNoEnd;  // last round of the omission window (inclusive)
  ProcessId peer = OmissionRule::kAllPeers;  // omissions only
  int permille = 1000;   // drop probability in 1/1000 (1000 = always)
};

struct CorruptionSpec {
  enum class Kind { kClock, kGarbage };

  ProcessId process = 0;
  Kind kind = Kind::kClock;
  // kClock: the corrupted round-counter value c_p.
  // kGarbage: magnitude of integers inside the random value.
  std::int64_t magnitude = 0;
  std::uint64_t value_seed = 0;  // kGarbage: generator seed
};

struct TrialPlan {
  std::uint64_t trial_seed = 1;  // simulator seed (jitter, probabilistic drops)
  TrialMode mode = TrialMode::kRoundAgreementSync;
  WeakenedKind weakened = WeakenedKind::kNone;
  std::string protocol;  // kCompiled only: a protocol_suite() name
  int n = 3;
  int f_budget = 1;  // kCompiled only: the protocol's crash budget f
  int max_extra_delay = 0;
  int rounds = 40;
  std::vector<FaultSpec> faults;
  std::vector<CorruptionSpec> corruptions;

  // The merged FaultPlan for process p (a process may carry several specs).
  FaultPlan fault_plan_for(ProcessId p) const;

  // Round-trip serialization (Value::to_string / Value::parse compatible).
  Value to_value() const;
  static std::optional<TrialPlan> from_value(const Value& v);

  // Human-readable multi-line rendering for failure reports.
  std::string describe() const;
};

// The concrete corrupted state a CorruptionSpec injects.
Value corruption_value(const CorruptionSpec& spec);

const char* to_string(TrialMode mode);
const char* to_string(WeakenedKind kind);
std::optional<TrialMode> parse_trial_mode(const std::string& s);
std::optional<WeakenedKind> parse_weakened_kind(const std::string& s);

}  // namespace ftss
