#include "check/oracles.h"

#include <algorithm>
#include <sstream>

#include "core/compiler.h"
#include "core/predicates.h"
#include "protocols/repeated.h"
#include "protocols/suite.h"

namespace ftss {

namespace {

struct PlanIndex {
  std::vector<std::optional<Round>> crash_at;  // min onset per process
  std::vector<std::vector<const FaultSpec*>> send_specs;
  std::vector<std::vector<const FaultSpec*>> receive_specs;
  std::vector<bool> has_spec;

  explicit PlanIndex(const TrialPlan& plan)
      : crash_at(plan.n),
        send_specs(plan.n),
        receive_specs(plan.n),
        has_spec(plan.n, false) {
    for (const auto& f : plan.faults) {
      has_spec[f.process] = true;
      switch (f.kind) {
        case FaultSpec::Kind::kCrash:
          crash_at[f.process] = crash_at[f.process]
                                    ? std::min(*crash_at[f.process], f.onset)
                                    : f.onset;
          break;
        case FaultSpec::Kind::kSendOmission:
          send_specs[f.process].push_back(&f);
          break;
        case FaultSpec::Kind::kReceiveOmission:
          receive_specs[f.process].push_back(&f);
          break;
      }
    }
  }

  static bool spec_covers(const FaultSpec& f, Round r, ProcessId other) {
    return r >= f.onset && r <= f.until &&
           (f.peer == OmissionRule::kAllPeers || f.peer == other);
  }

  bool licensed(const std::vector<const FaultSpec*>& specs, Round r,
                ProcessId other) const {
    for (const auto* f : specs) {
      if (spec_covers(*f, r, other)) return true;
    }
    return false;
  }

  bool must_drop(const std::vector<const FaultSpec*>& specs, Round r,
                 ProcessId other) const {
    for (const auto* f : specs) {
      if (f->permille == 1000 && spec_covers(*f, r, other)) return true;
    }
    return false;
  }
};

void add(std::vector<Violation>& out, const std::string& oracle,
         std::string detail) {
  out.push_back(Violation{oracle, std::move(detail)});
}

// The history must be exactly what the plan licenses: no unexplained drop,
// no unfired must-drop rule, no out-of-range delay, no surprise fault.
void audit_history(const History& h, const TrialPlan& plan,
                   std::vector<Violation>& out) {
  if (h.length() != plan.rounds) {
    std::ostringstream os;
    os << "history has " << h.length() << " rounds, plan says " << plan.rounds;
    add(out, "audit-length", os.str());
    return;
  }
  const PlanIndex idx(plan);

  for (const auto& rec : h.rounds) {
    for (ProcessId p = 0; p < plan.n; ++p) {
      const bool should_live = !idx.crash_at[p] || rec.round < *idx.crash_at[p];
      if (rec.alive[p] != should_live) {
        std::ostringstream os;
        os << "p" << p << (rec.alive[p] ? " alive" : " dead") << " at round "
           << rec.round << " contradicts crash plan";
        add(out, "audit-crash", os.str());
        return;
      }
    }
    for (const auto& sr : rec.sends) {
      const Round lag = sr.delivery_round - sr.sent_round;
      const Round max_lag = sr.sender == sr.dest ? 0 : plan.max_extra_delay;
      if (lag < 0 || lag > max_lag) {
        std::ostringstream os;
        os << "p" << sr.sender << "->p" << sr.dest << " sent round "
           << sr.sent_round << " delivered round " << sr.delivery_round
           << ", max_extra_delay " << plan.max_extra_delay;
        add(out, "audit-delay", os.str());
        return;
      }
      if (idx.crash_at[sr.sender] && sr.sent_round >= *idx.crash_at[sr.sender]) {
        std::ostringstream os;
        os << "p" << sr.sender << " sent at round " << sr.sent_round
           << " despite crashing at " << *idx.crash_at[sr.sender];
        add(out, "audit-crash", os.str());
        return;
      }
      std::ostringstream os;
      os << "p" << sr.sender << "->p" << sr.dest << " sent " << sr.sent_round
         << " delivery " << sr.delivery_round;
      if (sr.dropped_by_sender) {
        if (!idx.licensed(idx.send_specs[sr.sender], sr.sent_round, sr.dest)) {
          add(out, "audit-omission", "unlicensed send drop: " + os.str());
          return;
        }
      } else if (sr.dest_crashed) {
        if (!idx.crash_at[sr.dest] ||
            sr.delivery_round < *idx.crash_at[sr.dest]) {
          add(out, "audit-crash", "message eaten by non-crash: " + os.str());
          return;
        }
      } else if (sr.dropped_by_receiver) {
        if (!idx.licensed(idx.receive_specs[sr.dest], sr.delivery_round,
                          sr.sender)) {
          add(out, "audit-omission", "unlicensed receive drop: " + os.str());
          return;
        }
      } else if (sr.lost_in_flight) {
        // Legal only when the scheduled delivery round lies beyond the run:
        // otherwise the message should have resolved inside the history.
        if (sr.delivery_round <= h.length()) {
          add(out, "audit-omission",
              "in-flight flush inside the run: " + os.str());
          return;
        }
      } else if (sr.frame_corrupted) {
        // Frame corruption only exists on the serialized transport leg; a
        // sync-simulator history claiming it is lying about the model.
        add(out, "audit-omission",
            "frame corruption in an in-memory history: " + os.str());
        return;
      } else if (sr.delivered) {
        if (sr.sender != sr.dest &&
            idx.must_drop(idx.send_specs[sr.sender], sr.sent_round, sr.dest)) {
          add(out, "audit-omission", "must-drop send delivered: " + os.str());
          return;
        }
        if (sr.sender != sr.dest &&
            idx.must_drop(idx.receive_specs[sr.dest], sr.delivery_round,
                          sr.sender)) {
          add(out, "audit-omission",
              "must-drop receive delivered: " + os.str());
          return;
        }
        if (idx.crash_at[sr.dest] &&
            sr.delivery_round >= *idx.crash_at[sr.dest]) {
          add(out, "audit-crash", "delivered to crashed dest: " + os.str());
          return;
        }
      } else {
        add(out, "audit-omission", "undelivered with no cause: " + os.str());
        return;
      }
    }
  }

  const std::vector<bool> faulty = h.faulty();
  for (ProcessId p = 0; p < plan.n; ++p) {
    if (faulty[p] && !idx.has_spec[p]) {
      std::ostringstream os;
      os << "p" << p << " manifested a fault but has no plan entry";
      add(out, "audit-faulty", os.str());
    }
  }
}

void check_compiled(const SyncSimulator& sim, const TrialPlan& plan,
                    TrialEvaluation& eval) {
  const History& h = sim.history();
  const ProtocolSpec* spec = find_protocol(plan.protocol);
  if (spec == nullptr) {
    add(eval.violations, "compiled-setup",
        "unknown protocol: " + plan.protocol);
    return;
  }
  const int final_round = spec->make(plan.f_budget)->final_round();
  const Round base = std::max<Round>(h.last_coterie_change(), 1);
  eval.bound = 2 * final_round + 1;

  // The superimposed Figure 1 clocks still owe the Theorem 3 obligation.
  const FtssCheckResult ra = check_round_agreement_ftss(h, 1);
  if (!ra.ok) add(eval.violations, "theorem3-ftss", ra.violation);

  const InputSource inputs = spec->inputs(plan.n);
  const ValidityPredicate validity = spec->validity(inputs, plan.n);
  const RepeatedAnalysis analysis =
      analyze_repeated(compiled_views(sim), h.faulty(), validity);
  const auto clean_from = analysis.clean_from(/*require_validity=*/true);
  if (!clean_from) {
    std::ostringstream os;
    os << "no clean iteration suffix in " << h.length() << " rounds ("
       << analysis.iterations.size() << " iterations decided)";
    add(eval.violations, "sigma-plus-stabilization", os.str());
    return;
  }
  const Round margin = std::max<Round>(*clean_from - base, 0);
  eval.stabilization = margin;
  if (margin > eval.bound) {
    std::ostringstream os;
    os << "clean only from round " << *clean_from << ", "
       << margin << " rounds after the last coterie change (round "
       << h.last_coterie_change() << "); bound is 2*" << final_round
       << "+1 = " << eval.bound;
    add(eval.violations, "sigma-plus-stabilization", os.str());
  }

  // Suspect soundness, once the run has settled and crossed at least one
  // iteration boundary (which resets corrupted suspect sets): a correct
  // process never suspects a correct process.
  if (h.length() < *clean_from + 2 * final_round) return;
  const std::vector<bool> faulty = h.faulty();
  for (ProcessId p = 0; p < plan.n; ++p) {
    if (faulty[p]) continue;
    const auto* view = dynamic_cast<const CompiledProcess*>(&sim.process(p));
    if (view == nullptr) continue;
    for (ProcessId q : view->suspects()) {
      if (q >= 0 && q < plan.n && !faulty[q]) {
        std::ostringstream os;
        os << "correct p" << p << " suspects correct p" << q
           << " at end of run";
        add(eval.violations, "suspect-soundness", os.str());
      }
    }
  }
}

}  // namespace

std::string TrialEvaluation::describe() const {
  std::ostringstream os;
  for (const auto& v : violations) {
    os << "  [" << v.oracle << "] " << v.detail << "\n";
  }
  return os.str();
}

TrialEvaluation evaluate_trial(const SyncSimulator& sim,
                               const TrialPlan& plan) {
  TrialEvaluation eval;
  const History& h = sim.history();
  audit_history(h, plan, eval.violations);
  if (!eval.violations.empty()) return eval;  // history itself is suspect

  switch (plan.mode) {
    case TrialMode::kRoundAgreementSync: {
      eval.bound = 1;
      const FtssCheckResult r = check_round_agreement_ftss(h, 1);
      if (!r.ok) add(eval.violations, "theorem3-ftss", r.violation);
      eval.stabilization = measure_round_agreement(h).time();
      break;
    }
    case TrialMode::kRoundAgreementJitter: {
      eval.bound = 10 + 4 * plan.max_extra_delay;
      const FtssCheckResult r = check_round_agreement_eventual(h, eval.bound);
      if (!r.ok) {
        const bool inconclusive =
            r.violation.rfind("inconclusive", 0) == 0;
        add(eval.violations,
            inconclusive ? "jitter-inconclusive" : "jitter-stabilization",
            r.violation);
      }
      eval.stabilization = measure_round_agreement(h).time();
      break;
    }
    case TrialMode::kCompiled:
      check_compiled(sim, plan, eval);
      break;
  }
  return eval;
}

}  // namespace ftss
