// Shared construction of the system a TrialPlan describes.
//
// run_trial (check/explorer.h) and the conformance harness (src/conform/)
// must build *exactly* the same system from a plan — same process types,
// same weakenings, same corruption and fault wiring — or a divergence
// between them would measure setup skew rather than engine behavior.  The
// construction therefore lives here, in one place.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "check/plan.h"
#include "sim/process.h"
#include "sim/simulator.h"

namespace ftss {

// The processes the plan's mode/protocol/weakening selects, in id order.
// Returns an empty vector (and sets *error if non-null) for an unknown
// compiled protocol name.
std::vector<std::unique_ptr<SyncProcess>> build_trial_processes(
    const TrialPlan& plan, std::string* error = nullptr);

// Applies the plan's systemic corruptions and fault plans to a simulator
// freshly constructed over build_trial_processes(plan).  Must precede the
// first run_rounds call.
void configure_trial(SyncSimulator& sim, const TrialPlan& plan);

}  // namespace ftss
