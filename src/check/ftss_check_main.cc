// ftss_check: property-based adversary explorer CLI.
//
//   ftss_check --trials 1000 --seed 42          explore the real protocols
//   ftss_check --weakened ra-max                validate the oracles' teeth
//   ftss_check --replay plan.json               re-run one saved plan
//   ftss_check --dump-trial 17 --seed 42        print the 17th sampled plan
//
// Exit code: with --weakened none (the default), 0 iff no trial violated an
// oracle; with a weakened protocol selected, 0 iff the explorer *caught* it
// (failing to catch a planted bug is the failure).  --replay exits 0 iff the
// replayed plan passes.
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "check/explorer.h"
#include "obs/flight.h"
#include "obs/trace.h"

namespace {

void usage() {
  std::cerr
      << "usage: ftss_check [options]\n"
         "  --trials N       number of trials (default 1000)\n"
         "  --seed S         run seed (default 42)\n"
         "  --jobs J         worker threads (default: hardware)\n"
         "  --threads J      alias for --jobs\n"
         "  --sim-threads K  lanes per simulated round (default 1; also\n"
         "                   $FTSS_SIM_THREADS).  Byte-identical output for\n"
         "                   any K; nested under a parallel sweep the sims\n"
         "                   run serially, so pair K>1 with --jobs 1\n"
         "  --mode M         all|sync|jitter|compiled (default all)\n"
         "  --weakened W     none|ra-max|no-tags (default none)\n"
         "  --no-shrink      report failures without shrinking\n"
         "  --max-failures K failures to keep and shrink (default 5)\n"
         "  --replay FILE    run one plan from a JSON file and exit\n"
         "  --dump-trial I   print the I-th sampled plan and exit\n"
         "  --metrics-out F  write the aggregated metrics snapshot as JSON\n"
         "                   (\"metrics\" is deterministic: identical for any\n"
         "                   --threads; wall-clock data rides in \"timing\")\n"
         "  --trace-out F    with --replay: write the replay's event trace\n"
         "                   (.jsonl -> JSONL, otherwise Chrome trace_event)\n"
         "  --dump-dir D     where failure artifacts (.flight + metrics)\n"
         "                   land (default $FTSS_DUMP_DIR, else \".\");\n"
         "                   decode with ftss_trace --flight\n";
}

bool write_file(const std::string& path, const std::string& contents,
                const char* what) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "ftss_check: cannot write " << what << " to " << path << "\n";
    return false;
  }
  out << contents;
  return true;
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::string metrics_json(const ftss::MetricsSnapshot& metrics,
                         std::uint64_t run_seed, int trials) {
  ftss::Value doc;
  doc["schema"] = ftss::Value("ftss-metrics-v1");
  doc["seed"] = ftss::Value(static_cast<std::int64_t>(run_seed));
  doc["trials"] = ftss::Value(trials);
  std::ostringstream fp;
  fp << "0x" << std::hex << metrics.fingerprint();
  doc["fingerprint"] = ftss::Value(fp.str());
  // "metrics" is the deterministic part (identical across --threads and
  // machine speed); wall-clock histograms go in "timing" so the split is
  // unmissable to anything diffing these files.
  doc["metrics"] = metrics.stable_value();
  doc["timing"] = metrics.timing_value();
  return doc.to_string() + "\n";
}

// Dump-on-failure: flight ring + full metrics snapshot, reproducer-adjacent.
void dump_failure(const std::string& dump_dir, const char* stem,
                  const ftss::MetricsSnapshot& metrics) {
  const std::string prefix =
      ftss::failure_dump_dir(dump_dir) + "/" + stem;
  const std::string path = ftss::dump_failure_artifacts(prefix, &metrics);
  if (!path.empty()) {
    std::cout << "flight dump: " << path << " (decode with ftss_trace "
              << "--flight " << path << ")\n";
  }
}

int replay(const std::string& path, const std::string& trace_path,
           const std::string& metrics_path, const std::string& dump_dir) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "ftss_check: cannot open " << path << "\n";
    return 2;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  const auto parsed = ftss::Value::parse(buffer.str());
  if (!parsed) {
    std::cerr << "ftss_check: " << path << " is not valid plan JSON\n";
    return 2;
  }
  const auto plan = ftss::TrialPlan::from_value(*parsed);
  if (!plan) {
    std::cerr << "ftss_check: " << path << " is not a well-formed plan\n";
    return 2;
  }
  std::cout << plan->describe();

  ftss::JsonlTraceSink jsonl;
  ftss::ChromeTraceSink chrome;
  ftss::TrialRunOptions options;
  const bool want_jsonl = ends_with(trace_path, ".jsonl");
  if (!trace_path.empty()) {
    options.trace = want_jsonl ? static_cast<ftss::TraceSink*>(&jsonl)
                               : static_cast<ftss::TraceSink*>(&chrome);
  }
  const ftss::TrialResult result = ftss::run_trial(*plan, options);
  if (!trace_path.empty() &&
      !write_file(trace_path, want_jsonl ? jsonl.to_string() : chrome.to_string(),
                  "trace")) {
    return 2;
  }
  if (!metrics_path.empty() &&
      !write_file(metrics_path, metrics_json(result.metrics, plan->trial_seed, 1),
                  "metrics")) {
    return 2;
  }
  if (result.evaluation.ok()) {
    std::cout << "PASS";
    if (result.evaluation.stabilization) {
      std::cout << " (stabilization " << *result.evaluation.stabilization
                << "/" << result.evaluation.bound << ")";
    }
    std::cout << "\n";
    return 0;
  }
  std::cout << "FAIL\n" << result.evaluation.describe();
  dump_failure(dump_dir, "ftss_check_replay_failure", result.metrics);
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  ftss::ExplorerConfig config;
  std::string replay_path;
  std::string trace_path;
  std::string metrics_path;
  std::string dump_dir;
  int dump_trial = -1;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "ftss_check: " << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--trials") {
      config.trials = std::atoi(next());
    } else if (arg == "--seed") {
      config.seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--jobs" || arg == "--threads") {
      config.jobs = static_cast<unsigned>(std::atoi(next()));
    } else if (arg == "--sim-threads") {
      ftss::set_sim_threads_default(
          static_cast<unsigned>(std::atoi(next())));
    } else if (arg == "--mode") {
      const std::string m = next();
      config.adversary.allow_sync = m == "all" || m == "sync";
      config.adversary.allow_jitter = m == "all" || m == "jitter";
      config.adversary.allow_compiled = m == "all" || m == "compiled";
      if (!config.adversary.allow_sync && !config.adversary.allow_jitter &&
          !config.adversary.allow_compiled) {
        std::cerr << "ftss_check: unknown --mode " << m << "\n";
        return 2;
      }
    } else if (arg == "--weakened") {
      const auto w = ftss::parse_weakened_kind(next());
      if (!w) {
        std::cerr << "ftss_check: unknown --weakened kind\n";
        return 2;
      }
      config.weakened = *w;
    } else if (arg == "--no-shrink") {
      config.shrink = false;
    } else if (arg == "--max-failures") {
      config.max_failures = std::atoi(next());
    } else if (arg == "--replay") {
      replay_path = next();
    } else if (arg == "--trace-out") {
      trace_path = next();
    } else if (arg == "--metrics-out") {
      metrics_path = next();
    } else if (arg == "--dump-trial") {
      dump_trial = std::atoi(next());
    } else if (arg == "--dump-dir") {
      dump_dir = next();
    } else {
      usage();
      return arg == "--help" || arg == "-h" ? 0 : 2;
    }
  }

  if (!trace_path.empty() && replay_path.empty()) {
    std::cerr << "ftss_check: --trace-out requires --replay (traces are "
                 "per-execution; use ftss_trace for saved plans)\n";
    return 2;
  }

  if (!replay_path.empty()) {
    return replay(replay_path, trace_path, metrics_path, dump_dir);
  }

  if (dump_trial >= 0) {
    const ftss::TrialPlan plan =
        ftss::sample_trial(config.adversary, config.weakened,
                           ftss::trial_seed_for(config.seed, dump_trial));
    std::cout << plan.describe() << plan.to_value().to_string() << "\n";
    return 0;
  }

  const ftss::ExplorerReport report = ftss::explore(config);
  std::cout << report.summary();

  if (!metrics_path.empty() &&
      !write_file(metrics_path,
                  metrics_json(report.metrics, config.seed, report.trials),
                  "metrics")) {
    return 2;
  }

  if (config.weakened == ftss::WeakenedKind::kNone) {
    if (report.failing_trials > 0) {
      // An oracle failed on a real protocol: preserve the black box.
      dump_failure(dump_dir, "ftss_check_failure", report.metrics);
      return 1;
    }
    return 0;
  }
  // A weakened protocol was planted: the explorer must catch it.
  if (report.failing_trials > 0) {
    std::cout << "weakened protocol caught (" << report.failing_trials << "/"
              << report.trials << " trials failing)\n";
    return 0;
  }
  std::cout << "ERROR: weakened protocol NOT caught\n";
  return 1;
}
