// Parallel property-based trial driver with failing-schedule shrinking.
//
// explore() samples thousands of TrialPlans (see check/adversary.h), runs
// each on its own single-threaded simulator via util/parallel.h, evaluates
// the invariant oracles (check/oracles.h), and aggregates:
//  * coverage counters — how many trials exercised each mode, fault kind
//    and corruption kind (a run that never injected a crash proves nothing
//    about crashes);
//  * failures — each shrunk to a minimal replayable reproducer;
//  * near misses — passing trials ranked by how much of the theorem's
//    stabilization bound they consumed (the interesting regression pins);
//  * a deterministic fingerprint over every per-trial outcome, so two runs
//    with the same seed are verifiably identical regardless of thread
//    count or interleaving.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "check/adversary.h"
#include "check/oracles.h"
#include "check/plan.h"
#include "obs/metrics.h"

namespace ftss {

class TraceSink;

struct TrialResult {
  TrialPlan plan;
  TrialEvaluation evaluation;
  // Per-trial observability snapshot: history-derived message/coterie
  // counters plus trial outcome counters and the stabilization-latency
  // histogram.  Merging these in trial-index order is the explorer's
  // deterministic aggregate (ExplorerReport::metrics).
  MetricsSnapshot metrics;
};

struct TrialRunOptions {
  TraceSink* trace = nullptr;  // non-owning; receives the run's event stream
  bool record_states = false;  // full state snapshots in the history
  History* history_out = nullptr;  // receives the recorded history if set
};

// Runs one trial end-to-end: builds the system the plan describes (real or
// deliberately weakened), injects corruptions and fault plans, executes
// plan.rounds rounds, evaluates every applicable oracle.
TrialResult run_trial(const TrialPlan& plan);
TrialResult run_trial(const TrialPlan& plan, const TrialRunOptions& options);

struct ShrinkResult {
  TrialPlan plan;        // minimal plan still failing the same way
  int steps_tried = 0;   // candidate executions spent
  int steps_accepted = 0;
};

// Greedy shrink to a fixpoint (or until `budget` candidate executions are
// spent): drop faults and corruptions one at a time, zero the jitter,
// shorten omission windows and the run, derandomize drop probabilities,
// shrink corruption magnitudes and onsets.  A candidate is accepted iff it
// still fails AND its violated-oracle set is a subset of the original's —
// shrinking must not drift into a different failure mode.
ShrinkResult shrink_trial(const TrialResult& failing, int budget);

struct ExplorerConfig {
  std::uint64_t seed = 42;
  int trials = 1000;
  unsigned jobs = 0;  // sweep threads (0 = one per hardware thread)
  AdversaryConfig adversary;
  WeakenedKind weakened = WeakenedKind::kNone;
  bool shrink = true;
  int shrink_budget = 400;  // candidate executions per failure
  int max_failures = 5;     // failures kept (and shrunk) in the report
};

struct FailureReport {
  int index = 0;  // trial index within the run
  TrialPlan original;
  TrialPlan shrunk;
  std::vector<Violation> violations;  // of the shrunk plan
  int shrink_steps = 0;               // accepted reductions
};

struct NearMiss {
  int index = 0;
  std::uint64_t trial_seed = 0;
  TrialMode mode = TrialMode::kRoundAgreementSync;
  Round stabilization = 0;  // measured
  Round bound = 0;          // the oracle's limit
};

struct Coverage {
  int sync = 0, jitter = 0, compiled = 0;  // trials per mode
  int crash = 0, send_omission = 0, receive_omission = 0;  // fault specs
  int clock_corruptions = 0, garbage_corruptions = 0;
  int fault_free_trials = 0;
};

struct ExplorerReport {
  int trials = 0;
  int failing_trials = 0;
  Coverage coverage;
  std::vector<FailureReport> failures;
  std::vector<NearMiss> near_misses;  // top 5 by stabilization/bound
  std::uint64_t fingerprint = 0;
  // Fold of every trial's MetricsSnapshot in trial-index order; identical
  // (same fingerprint()) for any worker-thread count.
  MetricsSnapshot metrics;

  std::string summary() const;
};

ExplorerReport explore(const ExplorerConfig& config);

}  // namespace ftss
