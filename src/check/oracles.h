// Invariant oracles evaluated over one completed adversary trial.
//
// Two layers of checking:
//  * Universal audits — the executed history must match the plan exactly:
//    every dropped/delayed/crash-eaten message must be licensed by a plan
//    rule, every must-drop rule must have fired, jitter must stay within
//    max_extra_delay, and F(H) must be a subset of the planned faulty set.
//    These catch simulator bugs (the test subsystem checking the harness)
//    and make shrunk plans trustworthy: a plan replays exactly what it says.
//  * Mode oracles — the paper's theorems as executable predicates:
//      round-agreement          Theorem 3: ftss-solves with stab time 1.
//      round-agreement-jitter   EXP10 relaxation: stabilizes within
//                               10 + 4*max_extra_delay of the last
//                               de-stabilizing event.
//      compiled                 Theorem 3 on the superimposed clocks, plus
//                               Theorem 4's Σ⁺ obligation: a clean-forever
//                               suffix of iterations starting within
//                               2*final_round + 1 of the last coterie
//                               change, each iteration complete /
//                               synchronous / agreeing / valid per the
//                               protocol's own spec; plus suspect-set
//                               soundness (no correct process suspects a
//                               correct process once stabilized).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "check/plan.h"
#include "sim/simulator.h"

namespace ftss {

struct Violation {
  std::string oracle;  // stable identifier, e.g. "theorem3-ftss"
  std::string detail;
};

struct TrialEvaluation {
  std::vector<Violation> violations;
  // Measured stabilization margin vs. the oracle's bound (for near-miss
  // ranking): rounds after the last de-stabilizing event before the mode's
  // property held continuously, and the bound it was checked against.
  std::optional<Round> stabilization;
  Round bound = 0;

  bool ok() const { return violations.empty(); }
  std::string describe() const;
};

// Evaluates every applicable oracle over the simulator's recorded history.
// The simulator must have executed exactly plan.rounds rounds of the system
// the plan describes.
TrialEvaluation evaluate_trial(const SyncSimulator& sim, const TrialPlan& plan);

}  // namespace ftss
