#include "check/explorer.h"

#include <algorithm>
#include <cstdlib>
#include <iomanip>
#include <memory>
#include <set>
#include <sstream>

#include "check/shrink.h"
#include "check/trial_build.h"
#include "obs/flight.h"
#include "util/parallel.h"

namespace ftss {

namespace {

std::set<std::string> oracle_set(const TrialEvaluation& eval) {
  std::set<std::string> names;
  for (const auto& v : eval.violations) names.insert(v.oracle);
  return names;
}

bool is_subset(const std::set<std::string>& sub,
               const std::set<std::string>& super) {
  return std::includes(super.begin(), super.end(), sub.begin(), sub.end());
}

void fold_coverage(const TrialPlan& plan, Coverage& cov) {
  switch (plan.mode) {
    case TrialMode::kRoundAgreementSync:
      ++cov.sync;
      break;
    case TrialMode::kRoundAgreementJitter:
      ++cov.jitter;
      break;
    case TrialMode::kCompiled:
      ++cov.compiled;
      break;
  }
  for (const auto& f : plan.faults) {
    switch (f.kind) {
      case FaultSpec::Kind::kCrash:
        ++cov.crash;
        break;
      case FaultSpec::Kind::kSendOmission:
        ++cov.send_omission;
        break;
      case FaultSpec::Kind::kReceiveOmission:
        ++cov.receive_omission;
        break;
    }
  }
  for (const auto& c : plan.corruptions) {
    if (c.kind == CorruptionSpec::Kind::kClock) {
      ++cov.clock_corruptions;
    } else {
      ++cov.garbage_corruptions;
    }
  }
  if (plan.faults.empty()) ++cov.fault_free_trials;
}

std::uint64_t fnv(std::uint64_t h, std::uint64_t x) {
  for (int i = 0; i < 8; ++i) {
    h ^= (x >> (8 * i)) & 0xff;
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t fnv_str(std::uint64_t h, const std::string& s) {
  for (unsigned char ch : s) {
    h ^= ch;
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

TrialResult run_trial(const TrialPlan& plan) {
  return run_trial(plan, TrialRunOptions{});
}

TrialResult run_trial(const TrialPlan& plan, const TrialRunOptions& options) {
  const std::int64_t start_ns = FlightRecorder::now_ns();
  TrialResult result;
  result.plan = plan;

  std::string error;
  std::vector<std::unique_ptr<SyncProcess>> procs =
      build_trial_processes(plan, &error);
  if (procs.empty()) {
    result.evaluation.violations.push_back(Violation{"compiled-setup", error});
    return result;
  }

  SyncConfig config;
  config.seed = plan.trial_seed;
  config.record_states = options.record_states;
  config.max_extra_delay = plan.max_extra_delay;
  // Inherit the process-wide lane default: one knob (--sim-threads /
  // set_sim_threads_default) parallelizes every trial simulator, which is
  // how the fingerprint matrix re-runs whole suites at threads = k.
  config.threads = 0;
  SyncSimulator sim(config, std::move(procs));
  sim.set_trace_sink(options.trace);
  configure_trial(sim, plan);
  sim.run_rounds(plan.rounds);
  result.evaluation = evaluate_trial(sim, plan);
  if (options.history_out != nullptr) *options.history_out = sim.history();

  MetricsRegistry reg;
  record_history_metrics(sim.history(), reg);
  reg.add("trials");
  reg.add(std::string("trials_mode_") + to_string(plan.mode), 1);
  if (!result.evaluation.ok()) reg.add("trials_failing");
  for (const auto& v : result.evaluation.violations) {
    reg.add("violations_" + v.oracle);
  }
  if (result.evaluation.stabilization) {
    reg.observe("stabilization_latency", *result.evaluation.stabilization,
                stabilization_latency_bounds());
  }
  // Wall-clock side tape: trial_ns is a wall_clock histogram (outside the
  // snapshot's stable fingerprint) and the flight recorder gets one span
  // per trial plus an instant per failing trial, so a dump taken at
  // failure time shows which trials ran and which one tripped the oracle.
  reg.observe_nanos("trial_ns", FlightRecorder::now_ns() - start_ns);
  result.metrics = reg.snapshot();
  FlightRecorder::span(FlightCat::kTrial,
                       static_cast<std::int64_t>(plan.trial_seed), start_ns);
  if (!result.evaluation.ok()) {
    FlightRecorder::instant(
        FlightCat::kOracle,
        static_cast<std::int64_t>(result.evaluation.violations.size()),
        static_cast<std::int64_t>(plan.trial_seed));
  }
  return result;
}

ShrinkResult shrink_trial(const TrialResult& failing, int budget) {
  const std::set<std::string> original = oracle_set(failing.evaluation);
  // A candidate is accepted iff it still fails AND its violated-oracle set
  // is a subset of the original's — shrinking must not drift into a
  // different failure mode.
  const PlanShrinkResult s = shrink_plan(
      failing.plan,
      [&original](const TrialPlan& cand) {
        const TrialResult r = run_trial(cand);
        return !r.evaluation.ok() &&
               is_subset(oracle_set(r.evaluation), original);
      },
      budget);
  return ShrinkResult{s.plan, s.steps_tried, s.steps_accepted};
}

ExplorerReport explore(const ExplorerConfig& config) {
  ExplorerReport report;
  report.trials = config.trials;

  const std::vector<TrialResult> results = parallel_sweep<TrialResult>(
      static_cast<std::size_t>(std::max(0, config.trials)),
      [&config](std::size_t i) {
        const std::uint64_t seed =
            trial_seed_for(config.seed, static_cast<int>(i));
        return run_trial(
            sample_trial(config.adversary, config.weakened, seed));
      },
      config.jobs);

  std::uint64_t fp = 0xcbf29ce484222325ULL;
  std::vector<std::pair<double, NearMiss>> misses;
  for (int i = 0; i < static_cast<int>(results.size()); ++i) {
    const TrialResult& r = results[i];
    fold_coverage(r.plan, report.coverage);
    report.metrics.merge(r.metrics);

    fp = fnv(fp, r.plan.trial_seed);
    fp = fnv(fp, r.evaluation.ok() ? 1 : 2);
    for (const auto& v : r.evaluation.violations) fp = fnv_str(fp, v.oracle);
    if (r.evaluation.stabilization) {
      fp = fnv(fp, static_cast<std::uint64_t>(*r.evaluation.stabilization) + 3);
    }

    if (!r.evaluation.ok()) {
      ++report.failing_trials;
      if (static_cast<int>(report.failures.size()) < config.max_failures) {
        FailureReport f;
        f.index = i;
        f.original = r.plan;
        if (config.shrink) {
          ShrinkResult s = shrink_trial(r, config.shrink_budget);
          f.shrunk = s.plan;
          f.shrink_steps = s.steps_accepted;
          f.violations = run_trial(f.shrunk).evaluation.violations;
        } else {
          f.shrunk = r.plan;
          f.violations = r.evaluation.violations;
        }
        report.failures.push_back(std::move(f));
      }
    } else if (r.evaluation.stabilization && r.evaluation.bound > 0) {
      const double score =
          static_cast<double>(*r.evaluation.stabilization) /
          static_cast<double>(r.evaluation.bound);
      misses.emplace_back(
          score, NearMiss{i, r.plan.trial_seed, r.plan.mode,
                          *r.evaluation.stabilization, r.evaluation.bound});
    }
  }

  std::stable_sort(misses.begin(), misses.end(),
                   [](const auto& a, const auto& b) { return a.first > b.first; });
  for (std::size_t i = 0; i < misses.size() && i < 5; ++i) {
    report.near_misses.push_back(misses[i].second);
  }
  report.fingerprint = fp;
  return report;
}

std::string ExplorerReport::summary() const {
  std::ostringstream os;
  os << "adversary explorer: " << trials << " trials, " << failing_trials
     << " failing\n";
  os << "  modes: round-agreement " << coverage.sync << ", jitter "
     << coverage.jitter << ", compiled " << coverage.compiled << "\n";
  os << "  fault specs: crash " << coverage.crash << ", send-omission "
     << coverage.send_omission << ", receive-omission "
     << coverage.receive_omission << " (fault-free trials "
     << coverage.fault_free_trials << ")\n";
  os << "  corruptions: clock " << coverage.clock_corruptions << ", garbage "
     << coverage.garbage_corruptions << "\n";
  os << "  fingerprint: 0x" << std::hex << std::setfill('0') << std::setw(16)
     << fingerprint << std::dec << std::setfill(' ') << "\n";
  if (!near_misses.empty()) {
    os << "  near misses (stabilization/bound):\n";
    for (const auto& m : near_misses) {
      os << "    trial " << m.index << " seed " << m.trial_seed << " ["
         << to_string(m.mode) << "]: " << m.stabilization << "/" << m.bound
         << "\n";
    }
  }
  for (const auto& f : failures) {
    os << "  FAILURE at trial " << f.index << " (shrunk by " << f.shrink_steps
       << " steps, " << f.shrunk.faults.size() << " faults, "
       << f.shrunk.corruptions.size() << " corruptions):\n";
    os << f.shrunk.describe();
    for (const auto& v : f.violations) {
      os << "    [" << v.oracle << "] " << v.detail << "\n";
    }
    os << "    replay: " << f.shrunk.to_value().to_string() << "\n";
  }
  return os.str();
}

}  // namespace ftss
