#include "check/shrink.h"

#include <algorithm>
#include <cstdlib>

namespace ftss {

std::vector<TrialPlan> shrink_candidates(const TrialPlan& plan) {
  std::vector<TrialPlan> out;
  for (std::size_t i = 0; i < plan.faults.size(); ++i) {
    TrialPlan c = plan;
    c.faults.erase(c.faults.begin() + static_cast<std::ptrdiff_t>(i));
    out.push_back(std::move(c));
  }
  for (std::size_t i = 0; i < plan.corruptions.size(); ++i) {
    TrialPlan c = plan;
    c.corruptions.erase(c.corruptions.begin() +
                        static_cast<std::ptrdiff_t>(i));
    out.push_back(std::move(c));
  }
  if (plan.max_extra_delay > 0) {
    TrialPlan c = plan;
    c.max_extra_delay = 0;
    out.push_back(std::move(c));
    if (plan.max_extra_delay > 1) {
      c = plan;
      --c.max_extra_delay;
      out.push_back(std::move(c));
    }
  }
  if (plan.mode == TrialMode::kRoundAgreementSync && plan.rounds > 12) {
    TrialPlan c = plan;
    c.rounds = std::max(12, plan.rounds / 2);
    out.push_back(std::move(c));
  }
  for (std::size_t i = 0; i < plan.faults.size(); ++i) {
    const FaultSpec& f = plan.faults[i];
    if (f.kind != FaultSpec::Kind::kCrash) {
      if (f.until == FaultSpec::kNoEnd) {
        TrialPlan c = plan;
        c.faults[i].until = plan.rounds;
        out.push_back(std::move(c));
      } else if (f.until > f.onset) {
        TrialPlan c = plan;
        c.faults[i].until = f.onset + (f.until - f.onset) / 2;
        out.push_back(std::move(c));
      }
      if (f.permille != 1000) {
        TrialPlan c = plan;
        c.faults[i].permille = 1000;
        out.push_back(std::move(c));
      }
    }
    if (f.onset > 1) {
      TrialPlan c = plan;
      c.faults[i].onset = std::max<Round>(1, f.onset / 2);
      if (c.faults[i].until != FaultSpec::kNoEnd &&
          c.faults[i].until < c.faults[i].onset) {
        c.faults[i].until = c.faults[i].onset;
      }
      out.push_back(std::move(c));
    }
  }
  for (std::size_t i = 0; i < plan.corruptions.size(); ++i) {
    const CorruptionSpec& c0 = plan.corruptions[i];
    if (std::abs(c0.magnitude) > 8) {
      TrialPlan c = plan;
      c.corruptions[i].magnitude = c0.magnitude / 8;
      out.push_back(std::move(c));
    }
  }
  return out;
}

PlanShrinkResult shrink_plan(
    const TrialPlan& start,
    const std::function<bool(const TrialPlan&)>& still_fails, int budget) {
  PlanShrinkResult res;
  res.plan = start;
  bool progress = true;
  while (progress && res.steps_tried < budget) {
    progress = false;
    for (TrialPlan& cand : shrink_candidates(res.plan)) {
      if (res.steps_tried >= budget) break;
      ++res.steps_tried;
      if (still_fails(cand)) {
        res.plan = std::move(cand);
        ++res.steps_accepted;
        progress = true;
        break;  // restart candidate generation from the smaller plan
      }
    }
  }
  return res;
}

}  // namespace ftss
