#include "check/adversary.h"

#include <algorithm>
#include <vector>

#include "protocols/suite.h"
#include "util/rng.h"

namespace ftss {

namespace {

// A corrupted round counter whose magnitude spans everything from off-by-one
// to astronomically far from the actual round.
std::int64_t random_clock(Rng& rng) {
  std::int64_t scale = 1;
  const int exponent = static_cast<int>(rng.uniform(0, 12));
  for (int i = 0; i < exponent; ++i) scale *= 10;
  return rng.uniform(-scale, scale);
}

CorruptionSpec sample_corruption(Rng& rng, ProcessId p) {
  CorruptionSpec c;
  c.process = p;
  if (rng.chance(0.55)) {
    c.kind = CorruptionSpec::Kind::kClock;
    c.magnitude = random_clock(rng);
  } else {
    c.kind = CorruptionSpec::Kind::kGarbage;
    c.magnitude = 1'000'000'000'000LL;
    c.value_seed = rng.engine()();
  }
  return c;
}

// An omission window: onset in [1, onset_max]; bounded end in
// [onset, window_max], or open-ended when window_max permits it.
void sample_window(Rng& rng, Round onset_max, Round window_max,
                   bool allow_open, FaultSpec& f) {
  f.onset = rng.uniform(1, onset_max);
  if (allow_open && rng.chance(0.35)) {
    f.until = FaultSpec::kNoEnd;
  } else {
    f.until = rng.uniform(f.onset, window_max);
  }
}

FaultSpec sample_ra_fault(Rng& rng, ProcessId p, int n, Round onset_max,
                          Round window_max, bool allow_open) {
  FaultSpec f;
  f.process = p;
  switch (rng.uniform(0, 2)) {
    case 0:
      f.kind = FaultSpec::Kind::kCrash;
      f.onset = rng.uniform(1, onset_max);
      break;
    case 1:
      f.kind = FaultSpec::Kind::kSendOmission;
      sample_window(rng, onset_max, window_max, allow_open, f);
      break;
    default:
      f.kind = FaultSpec::Kind::kReceiveOmission;
      sample_window(rng, onset_max, window_max, allow_open, f);
      break;
  }
  if (f.kind != FaultSpec::Kind::kCrash) {
    if (rng.chance(0.3)) {
      ProcessId peer = static_cast<ProcessId>(rng.uniform(0, n - 1));
      if (peer != p) f.peer = peer;
    }
    if (rng.chance(0.45)) {
      f.permille = static_cast<int>(rng.uniform(100, 999));
    }
  }
  return f;
}

void sample_round_agreement(Rng& rng, bool jitter, int max_jitter,
                            TrialPlan& plan) {
  plan.max_extra_delay =
      jitter ? static_cast<int>(rng.uniform(1, std::max(1, max_jitter))) : 0;
  // Jitter trials bound every fault to the first kFaultEpoch rounds and run
  // long enough past it that the eventual-agreement oracle has a judgeable
  // tail (see check_round_agreement_eventual's inconclusive rule).
  const Round kFaultEpoch = 15;
  const Round onset_max = jitter ? kFaultEpoch : 20;
  const Round window_max = jitter ? kFaultEpoch : 30;
  plan.rounds = jitter ? static_cast<int>(kFaultEpoch + 35 +
                                          10 * plan.max_extra_delay)
                       : 40;
  const int faulty = static_cast<int>(rng.uniform(0, plan.n - 1));
  for (int p : rng.sample(plan.n, faulty)) {
    plan.faults.push_back(sample_ra_fault(rng, p, plan.n, onset_max,
                                          window_max, /*allow_open=*/!jitter));
  }
  for (ProcessId p = 0; p < plan.n; ++p) {
    if (rng.chance(0.75)) plan.corruptions.push_back(sample_corruption(rng, p));
  }
}

void sample_compiled(Rng& rng, TrialPlan& plan, const AdversaryConfig& config) {
  plan.f_budget = static_cast<int>(rng.uniform(1, 2));
  plan.n = static_cast<int>(rng.uniform(
      std::max(config.min_n, plan.f_budget + 2), std::max(config.max_n, 4)));
  const auto& suite = protocol_suite();
  plan.protocol =
      suite[static_cast<std::size_t>(rng.uniform(
                0, static_cast<std::int64_t>(suite.size()) - 1))].name;
  const int final_round = plan.f_budget + 1;  // every shipped Π runs f+1 rounds
  plan.rounds = 24 + 10 * final_round;
  const int faulty = static_cast<int>(rng.uniform(0, plan.f_budget));
  for (int p : rng.sample(plan.n, faulty)) {
    FaultSpec f;
    f.process = p;
    switch (rng.uniform(0, 2)) {
      case 0:
        f.kind = FaultSpec::Kind::kCrash;
        f.onset = rng.uniform(1, 12);
        break;
      case 1:
        // Receive omission with free window / peer / probability: the faulty
        // process's own view degrades, correct processes' views do not.
        f.kind = FaultSpec::Kind::kReceiveOmission;
        sample_window(rng, 12, plan.rounds, /*allow_open=*/true, f);
        if (rng.chance(0.3)) {
          ProcessId peer = static_cast<ProcessId>(rng.uniform(0, plan.n - 1));
          if (peer != p) f.peer = peer;
        }
        if (rng.chance(0.4)) {
          f.permille = static_cast<int>(rng.uniform(100, 999));
        }
        break;
      default:
        // Send omission only as a consistent full-broadcast window: every
        // correct process misses the same messages, which Π's crash model
        // covers (the window behaves like a crash + recovery at the tag
        // level and is healed by the suspect reset at iteration boundaries).
        f.kind = FaultSpec::Kind::kSendOmission;
        sample_window(rng, 12, plan.rounds, /*allow_open=*/true, f);
        break;
    }
    plan.faults.push_back(f);
  }
  for (ProcessId p = 0; p < plan.n; ++p) {
    if (rng.chance(0.7)) plan.corruptions.push_back(sample_corruption(rng, p));
  }
}

// The §2.4 "insidious problem" shape that the ROUND-tag defense exists for:
// one receive-deaf process whose round counter free-runs from a stale
// (negative) value, replaying inputs of long-gone iterations.  With the tag
// filter on this is harmless; with kCompilerNoRoundTags it must be caught.
void sample_stale_poison(Rng& rng, TrialPlan& plan,
                         const AdversaryConfig& config) {
  plan.f_budget = 1;
  plan.n = static_cast<int>(
      rng.uniform(std::max(config.min_n, 3), std::max(config.max_n, 4)));
  plan.protocol = "floodset-consensus";  // min-of-values: stale inputs win
  plan.rounds = 24 + 10 * (plan.f_budget + 1);
  const ProcessId stale = static_cast<ProcessId>(rng.uniform(0, plan.n - 1));
  plan.faults.push_back(FaultSpec{.process = stale,
                                  .kind = FaultSpec::Kind::kReceiveOmission,
                                  .onset = 1});
  plan.corruptions.push_back(
      CorruptionSpec{.process = stale,
                     .kind = CorruptionSpec::Kind::kClock,
                     .magnitude = -rng.uniform(100, 100000)});
  for (ProcessId p = 0; p < plan.n; ++p) {
    if (p != stale && rng.chance(0.5)) {
      plan.corruptions.push_back(sample_corruption(rng, p));
    }
  }
}

}  // namespace

TrialPlan sample_trial(const AdversaryConfig& config, WeakenedKind weakened,
                       std::uint64_t trial_seed) {
  Rng rng(trial_seed);
  TrialPlan plan;
  plan.trial_seed = trial_seed;
  plan.weakened = weakened;
  plan.n = static_cast<int>(rng.uniform(config.min_n, config.max_n));

  if (weakened == WeakenedKind::kCompilerNoRoundTags) {
    plan.mode = TrialMode::kCompiled;
    if (rng.chance(0.85)) {
      sample_stale_poison(rng, plan, config);
    } else {
      sample_compiled(rng, plan, config);
    }
    return plan;
  }

  std::vector<TrialMode> modes;
  if (config.allow_sync) {
    modes.insert(modes.end(), 2, TrialMode::kRoundAgreementSync);
  }
  if (config.allow_jitter) modes.push_back(TrialMode::kRoundAgreementJitter);
  // A weakened Figure 1 never runs inside the compiler, so keep ra-max
  // trials on the round-agreement modes where the weakening is live.
  if (config.allow_compiled && weakened == WeakenedKind::kNone) {
    modes.insert(modes.end(), 2, TrialMode::kCompiled);
  }
  if (modes.empty()) modes.push_back(TrialMode::kRoundAgreementSync);
  plan.mode = modes[static_cast<std::size_t>(
      rng.uniform(0, static_cast<std::int64_t>(modes.size()) - 1))];

  switch (plan.mode) {
    case TrialMode::kRoundAgreementSync:
      sample_round_agreement(rng, /*jitter=*/false, config.max_jitter, plan);
      break;
    case TrialMode::kRoundAgreementJitter:
      sample_round_agreement(rng, /*jitter=*/true, config.max_jitter, plan);
      break;
    case TrialMode::kCompiled:
      sample_compiled(rng, plan, config);
      break;
  }
  return plan;
}

std::uint64_t trial_seed_for(std::uint64_t run_seed, int index) {
  // splitmix64 step seeded by (run_seed, index); masked to stay positive
  // through the int64 round-trip in plan serialization.
  std::uint64_t z = run_seed + 0x9e3779b97f4a7c15ULL *
                                   (static_cast<std::uint64_t>(index) + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z = z ^ (z >> 31);
  z &= 0x7fffffffffffffffULL;
  return z == 0 ? 1 : z;
}

}  // namespace ftss
