// Adversary generators: seeded random TrialPlans.
//
// Every random choice derives from the single trial seed, so a trial is
// fully reproducible from (generator config, seed) and the sampled plan can
// be serialized, replayed and shrunk independently of the generator.
//
// What gets sampled, per mode:
//  * round-agreement (sync):  up to n-1 faulty processes mixing crash /
//    send-omission / receive-omission (random onset rounds, windows, peers,
//    drop probabilities), round-counter and garbage corruption of most
//    processes.  Checked against the strict Theorem 3 obligation.
//  * round-agreement-jitter:  the same under max_extra_delay ∈ [1, max],
//    with fault windows bounded so the history has a judgeable tail.
//  * compiled:  a random protocol_suite() protocol under crash faults,
//    receive-omission faults and consistent (full-broadcast) send-omission
//    windows — the general-omission shapes a Figure-2 style Π tolerates —
//    plus arbitrary corruption.  Selective per-peer send omission is
//    excluded: Π only ft-solves Σ for crash-consistent failures, so those
//    schedules void the guarantee by construction (the guarantee being
//    quantified over F(H,Π) with |F| ≤ f of Π's failure model).
#pragma once

#include <cstdint>

#include "check/plan.h"

namespace ftss {

struct AdversaryConfig {
  int min_n = 3;
  int max_n = 8;
  int max_jitter = 3;  // max_extra_delay upper bound for jitter trials
  bool allow_sync = true;
  bool allow_jitter = true;
  bool allow_compiled = true;
};

// Samples one trial plan deterministically from `trial_seed`.  `weakened`
// selects which protocol implementation the trial will run (and biases the
// sampler toward schedules able to expose that weakening).
TrialPlan sample_trial(const AdversaryConfig& config, WeakenedKind weakened,
                       std::uint64_t trial_seed);

// The i-th trial seed of an explorer run (splitmix64 over the run seed).
std::uint64_t trial_seed_for(std::uint64_t run_seed, int index);

}  // namespace ftss
