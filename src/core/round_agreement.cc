#include "core/round_agreement.h"

#include <algorithm>

#include "util/numeric.h"

namespace ftss {

namespace {
// Message shape: {"type": "ROUND", "p": sender, "c": round}.
Value round_message(ProcessId p, Round c) {
  Value m;
  m["type"] = Value("ROUND");
  m["p"] = Value(static_cast<std::int64_t>(p));
  m["c"] = Value(c);
  return m;
}
}  // namespace

void RoundAgreementProcess::begin_round(Outbox& out) {
  // The broadcast payload is a member reused across rounds: only the "c"
  // entry changes, and COW semantics make the update in-place when nothing
  // retains last round's copies (inboxes are drained every round) while
  // cloning first when the history or an in-flight message still shares the
  // node.  Steady-state rounds therefore build no payload nodes at all.
  if (msg_.is_null()) msg_ = round_message(self_, c_);
  msg_["c"] = Value(c_);
  out.broadcast(msg_);
}

void RoundAgreementProcess::end_round(const std::vector<Message>& delivered) {
  // R := { c | p received (ROUND: q, c) };  c_p := max(R) + 1.
  // R always contains p's own broadcast, so max over deliveries is defined;
  // guard anyway so a pathological run cannot fault.
  bool any = false;
  Round best = c_;
  for (const auto& m : delivered) {
    const Value& c = m.payload.at("c");
    if (!c.is_int()) continue;  // garbage from a corrupted peer: ignore shape
    const Round t = clamp_round_tag(c.as_int());
    best = any ? std::max(best, t) : t;
    any = true;
  }
  c_ = (any ? best : clamp_round_tag(c_)) + 1;
}

Value RoundAgreementProcess::snapshot_state() const {
  Value s;
  s["c"] = Value(c_);
  return s;
}

void RoundAgreementProcess::restore_state(const Value& state) {
  // Map arbitrary corruption into the state space (a single integer): use
  // the "c" field when it is an int, otherwise derive a deterministic
  // arbitrary integer from the garbage.
  const Value& c = state.at("c");
  c_ = clamp_restored_round(
      c.is_int() ? c.as_int() : static_cast<Round>(state.hash() % 1000003));
}

void UniformRoundAgreementProcess::begin_round(Outbox& out) {
  if (msg_.is_null()) msg_ = round_message(self_, c_);
  msg_["c"] = Value(c_);
  out.broadcast(msg_);
}

void UniformRoundAgreementProcess::end_round(
    const std::vector<Message>& delivered) {
  bool any = false;
  Round best = c_;
  bool disagreement = false;
  for (const auto& m : delivered) {
    const Value& c = m.payload.at("c");
    if (!c.is_int()) continue;
    if (c.as_int() != c_) disagreement = true;
    const Round t = clamp_round_tag(c.as_int());
    best = any ? std::max(best, t) : t;
    any = true;
  }
  if (disagreement) {
    // "Self-check and halt before doing any harm."  Under a systemic failure
    // this halts correct processes — the behavior Theorem 2 proves fatal.
    halted_ = true;
    return;
  }
  c_ = (any ? best : clamp_round_tag(c_)) + 1;
}

Value UniformRoundAgreementProcess::snapshot_state() const {
  Value s;
  s["c"] = Value(c_);
  s["halted"] = Value(halted_);
  return s;
}

void UniformRoundAgreementProcess::restore_state(const Value& state) {
  const Value& c = state.at("c");
  c_ = clamp_restored_round(
      c.is_int() ? c.as_int() : static_cast<Round>(state.hash() % 1000003));
  halted_ = state.at("halted").bool_or(false);
}

}  // namespace ftss
