// Canonical terminating, round-based, full-information protocols Π (Fig. 2).
//
// A TerminatingProtocol describes one iteration of a protocol meant to be
// repeated forever (e.g., one Consensus instance inside Repeated Consensus).
// Implementations supply a pure transition function; the execution shells —
// FullInfoProcess (ft-only, Fig. 2) and CompiledProcess (ftss, Fig. 3) —
// drive it.
//
// IMPORTANT: after a systemic failure the `state` handed to transition() can
// be arbitrary garbage (wrong types, missing fields).  Implementations must
// use the tolerant Value accessors and never assume shape.  The same holds
// for received message payloads, which are peer states.
#pragma once

#include <functional>
#include <vector>

#include "sim/types.h"

namespace ftss {

class TerminatingProtocol {
 public:
  virtual ~TerminatingProtocol() = default;

  // A human-readable name for logs and benchmarks.
  virtual std::string name() const = 0;

  // The iteration runs rounds 1..final_round (the paper's final_round).
  virtual int final_round() const = 0;

  // Fresh state at the start of an iteration, given this process's input.
  virtual Value initial_state(ProcessId p, int n, const Value& input) const = 0;

  // Full-information transition: next state from own state and the received
  // peer states, executing protocol round k (1..final_round).
  // `received` holds one message per non-suspected sender, whose payload is
  // that sender's full state at the start of the round.
  virtual Value transition(ProcessId p, int n, const Value& state,
                           const std::vector<Message>& received,
                           int k) const = 0;

  // Extract the decision from a final state (after the round-final_round
  // transition).  Null if the state never reached a decision.
  virtual Value decision(const Value& state) const = 0;
};

// Supplies each process's input for iteration `iteration` (0-based,
// identified by the agreed round counter: iteration = floor(c / final_round)).
// Must be deterministic: in the repeated-protocol model every process can
// derive its own input locally at each iteration boundary.
using InputSource = std::function<Value(ProcessId p, std::int64_t iteration)>;

// A decision produced by one process at the end of one iteration.
struct DecisionRecord {
  ProcessId process = -1;      // which process decided
  std::int64_t iteration = 0;  // floor(c / final_round) at iteration end
  Round at_actual_round = 0;   // external observer's round when decided
  Value value;
  Value input_used;            // the input this process fed into the iteration
};

}  // namespace ftss
