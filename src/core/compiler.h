// The compiler of §2.4 (Figure 3): superimposes the round-agreement protocol
// of Figure 1 onto a terminating full-information protocol Π, producing the
// non-terminating Π⁺ that ftss-solves Σ⁺ (Σ repeated forever) with
// stabilization time final_round (Theorem 4).
//
// Mechanisms, exactly as in the figure:
//   * every message carries both the STATE part (Π's payload) and a ROUND
//     tag holding the sender's round variable;
//   * a per-process `suspect` set accumulates every process from which an
//     expected same-round message was not received this round; Π's
//     transition only sees messages from non-suspects ("out-of-date" and
//     corrupted-round messages are filtered, §2.4's "insidious problem");
//   * the round variable is updated max(all received ROUND tags) + 1 — the
//     Figure 1 rule, over *unfiltered* tags;
//   * normalize(c) = c mod final_round + 1 maps the unbounded agreed counter
//     onto Π's rounds 1..final_round;
//   * when normalize(c) returns to 1 the iteration is over: state and
//     suspect set are reset and a fresh input is drawn.
//
// For ablation experiments (EXP7) the two defenses can be individually
// disabled; Theorem 4 only holds with both enabled.
#pragma once

#include <memory>

#include "core/terminating.h"
#include "sim/process.h"
#include "util/process_set.h"

namespace ftss {

struct CompilerOptions {
  // Disable the suspect-set filter (ablation: Π sees every message).
  bool use_suspect_filter = true;
  // Disable round tagging/filtering entirely; Π⁺ still runs round agreement
  // but Π consumes messages regardless of their ROUND tag (ablation).
  bool use_round_tags = true;
};

class CompiledProcess : public SyncProcess {
 public:
  CompiledProcess(ProcessId self, int n,
                  std::shared_ptr<const TerminatingProtocol> protocol,
                  InputSource inputs, CompilerOptions options = {});

  void begin_round(Outbox& out) override;
  void end_round(const std::vector<Message>& delivered) override;

  Value snapshot_state() const override;
  void restore_state(const Value& state) override;
  std::optional<Round> round_counter() const override { return c_; }

  // Completed-iteration decisions, in the order they occurred.
  const std::vector<DecisionRecord>& decisions() const { return decisions_; }

  const ProcessSet& suspects() const { return suspect_; }
  const ProcessSet* suspect_set() const override { return &suspect_; }

 private:
  std::int64_t iteration_of(Round c) const;
  void reset_iteration(Round c);

  ProcessId self_;
  int n_;
  std::shared_ptr<const TerminatingProtocol> protocol_;
  InputSource inputs_;
  CompilerOptions options_;

  Value s_;
  Round c_;
  ProcessSet suspect_;
  Value current_input_;
  Value msg_;  // reused broadcast envelope; see begin_round
  // Per-round scratch, cleared-not-reallocated (the §2.4 filter runs every
  // round of every process; see end_round).
  ProcessSet matching_;
  std::vector<Message> pi_view_;

  std::vector<DecisionRecord> decisions_;
  Round actual_round_ = 0;  // local count of rounds executed (observer aid)
};

// Convenience: build the full Π⁺ process vector for an n-process system.
std::vector<std::unique_ptr<SyncProcess>> compile_protocol(
    int n, std::shared_ptr<const TerminatingProtocol> protocol,
    InputSource inputs, CompilerOptions options = {});

}  // namespace ftss
