// Σ-predicate checkers: executable forms of the paper's definitions.
//
//  * Assumption 1 (agreement + rate of round variables) evaluated over
//    recorded histories;
//  * Assumption 2 (uniformity) for protocols that restrict faulty behavior;
//  * Definition 2.4 (ftss-solves with stabilization time r), specialized to
//    round agreement and generic over a caller-supplied window predicate;
//  * measurement of the empirically-achieved stabilization time relative to
//    the last coterie change (the paper's de-stabilizing event).
//
// Conventions: rounds are 1-based actual rounds; "the coterie at round r" is
// the coterie of the r-prefix (recorded at the end of round r); clocks are
// the c_p values at the *start* of round r.  "Correct" means not in the
// supplied faulty set (for prefix checks, faults that manifest later leave a
// process correct, exactly as in the definitions).
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "sim/history.h"

namespace ftss {

// --- Assumption 1 ----------------------------------------------------------

// Agreement: all correct, alive, non-halted processes hold equal round
// variables at the start of round r.  (A halted or crashed *correct* process
// cannot satisfy Assumption 1 at all; halting counts as a violation, which
// is the crux of Theorem 2.)
bool clocks_agree_at(const History& h, Round r, const std::vector<bool>& faulty);

// Rate: every correct process's round variable at the start of round r+1 is
// its round-r value plus one.  Requires r+1 <= |H|.
bool rate_holds_between(const History& h, Round r, const std::vector<bool>& faulty);

// Rounds r in [from, to-1] where some correct process's clock does NOT
// advance by exactly one into r+1 (clock "jumps"; Theorem 1's unavoidable
// events under the tentative definition).
std::vector<Round> rate_violation_rounds(const History& h, Round from, Round to,
                                         const std::vector<bool>& faulty);

// Rounds r in [from, to] where the correct clocks DISAGREE at the start of
// round r.  (Unlike the rate condition — which a bounded mod-M counter
// cannot even express, since c^{r+1} = c^r + 1 fails at every wrap — clock
// agreement is meaningful for bounded counters too; the bounded-counter
// impossibility demo counts these.)
std::vector<Round> disagreement_rounds(const History& h, Round from, Round to,
                                       const std::vector<bool>& faulty);

// --- Assumption 2 ----------------------------------------------------------

// Uniformity at round r: every faulty process has halted (or crashed) by
// round r, or agrees with the correct clocks.
bool uniformity_holds_at(const History& h, Round r, const std::vector<bool>& faulty);

// --- Coterie intervals and Definition 2.4 -----------------------------------

// Maximal intervals [begin, end] of rounds whose end-of-round coterie is
// constant.  Because the coterie is monotone, these partition 1..|H|.
struct CoterieInterval {
  Round begin = 0;
  Round end = 0;
  std::vector<bool> coterie;
};
std::vector<CoterieInterval> coterie_intervals(const History& h);

// A window predicate receives a round range [from, to] (both within the
// history) plus the faulty set F(prefix-to) and decides whether Σ holds
// there.  Used to instantiate Definition 2.4 for arbitrary problems.
using WindowPredicate = std::function<bool(const History&, Round from, Round to,
                                           const std::vector<bool>& faulty)>;

struct FtssCheckResult {
  bool ok = true;
  std::string violation;  // human-readable description of the first failure
};

// Definition 2.4 instantiated on a recorded history: for every maximal
// coterie-constant interval [A, B], Σ must hold on rounds [A + stab_time, B]
// (the first stab_time rounds of the interval are excused).
FtssCheckResult check_ftss(const History& h, Round stab_time,
                           const WindowPredicate& sigma);

// Σ for the round-agreement problem itself: clock agreement at the start of
// every round in the window and rate between consecutive rounds within it.
WindowPredicate round_agreement_sigma();

// check_ftss specialized to round agreement (Theorem 3's obligation).
FtssCheckResult check_round_agreement_ftss(const History& h, Round stab_time);

// Relaxed obligation for "synchronous but not perfectly synchronized"
// systems (§3's opening remark, EXP10): under delivery jitter the per-
// interval stab-1 bound of Theorem 3 does not hold, but Figure 1 still
// reaches exact agreement.  Checks that the history stabilizes (agreement +
// rate hold on a suffix) within `bound` rounds of the last de-stabilizing
// event.  The history must extend at least `bound` rounds past the last
// coterie change, otherwise the check fails as inconclusive.
FtssCheckResult check_round_agreement_eventual(const History& h, Round bound);

// Definition 2.2 (ss-solves) specialized to round agreement: Σ must hold on
// the stab_time-suffix of the history with NO faulty processes assumed —
// the classic self-stabilization contract, meaningful only for executions
// free of process failures.  Together with Definition 2.1 (ft-solves,
// checked by running Π under process failures from clean states) these are
// the two one-failure-type definitions the paper unifies into Def 2.4.
FtssCheckResult check_round_agreement_ss(const History& h, Round stab_time);

// --- Stabilization measurement ----------------------------------------------

struct StabilizationMeasure {
  // Round of the last de-stabilizing event (coterie change), 0 if none.
  Round last_coterie_change = 0;
  // First round such that agreement holds at the start of every round from
  // here to the end of the history, and rate holds between all consecutive
  // such rounds.  nullopt if the history never stabilizes.
  std::optional<Round> stable_from;
  // Measured stabilization time: rounds after the last coterie change (or
  // after round 0 for an unchanged coterie) before Σ holds continuously.
  std::optional<Round> time() const {
    if (!stable_from) return std::nullopt;
    const Round base = std::max<Round>(last_coterie_change, 1);
    return std::max<Round>(*stable_from - base, 0);
  }
};

// Measures round-agreement stabilization over the whole recorded history,
// with faulty = F(H) of the full history.
StabilizationMeasure measure_round_agreement(const History& h);

}  // namespace ftss
