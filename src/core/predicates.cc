#include "core/predicates.h"

#include <sstream>

namespace ftss {

namespace {
// A process participates in clock checks at round r if it is correct, alive
// and not self-halted at the start of round r.
bool participates(const RoundRecord& rec, const std::vector<bool>& faulty,
                  int p) {
  return !faulty[p] && rec.alive[p] && !rec.halted[p];
}
}  // namespace

bool clocks_agree_at(const History& h, Round r, const std::vector<bool>& faulty) {
  const RoundRecord& rec = h.at(r);
  std::optional<Round> common;
  for (int p = 0; p < h.n; ++p) {
    if (faulty[p]) continue;
    // A correct process that crashed cannot exist (crash => faulty); a
    // correct process that *halted* fails agreement by Assumption 1's intent
    // (its clock no longer tracks the common round).
    if (!rec.alive[p] || rec.halted[p]) return false;
    if (!rec.clock[p]) return false;
    if (!common) {
      common = *rec.clock[p];
    } else if (*common != *rec.clock[p]) {
      return false;
    }
  }
  return true;
}

bool rate_holds_between(const History& h, Round r, const std::vector<bool>& faulty) {
  if (r + 1 > h.length()) return false;
  const RoundRecord& now = h.at(r);
  const RoundRecord& next = h.at(r + 1);
  for (int p = 0; p < h.n; ++p) {
    if (faulty[p]) continue;
    if (!participates(now, faulty, p) || !participates(next, faulty, p)) {
      return false;
    }
    if (!now.clock[p] || !next.clock[p]) return false;
    if (*next.clock[p] != *now.clock[p] + 1) return false;
  }
  return true;
}

std::vector<Round> rate_violation_rounds(const History& h, Round from, Round to,
                                         const std::vector<bool>& faulty) {
  std::vector<Round> out;
  for (Round r = std::max<Round>(from, 1); r < to && r < h.length(); ++r) {
    if (!rate_holds_between(h, r, faulty)) out.push_back(r);
  }
  return out;
}

std::vector<Round> disagreement_rounds(const History& h, Round from, Round to,
                                       const std::vector<bool>& faulty) {
  std::vector<Round> out;
  for (Round r = std::max<Round>(from, 1); r <= to && r <= h.length(); ++r) {
    if (!clocks_agree_at(h, r, faulty)) out.push_back(r);
  }
  return out;
}

bool uniformity_holds_at(const History& h, Round r, const std::vector<bool>& faulty) {
  const RoundRecord& rec = h.at(r);
  // Find the common correct clock first.
  std::optional<Round> common;
  for (int p = 0; p < h.n; ++p) {
    if (!faulty[p] && rec.alive[p] && !rec.halted[p] && rec.clock[p]) {
      common = *rec.clock[p];
      break;
    }
  }
  for (int p = 0; p < h.n; ++p) {
    if (!faulty[p]) continue;
    if (!rec.alive[p] || rec.halted[p]) continue;  // halted/crashed: allowed
    if (!rec.clock[p] || !common) return false;
    if (*rec.clock[p] != *common) return false;
  }
  return true;
}

std::vector<CoterieInterval> coterie_intervals(const History& h) {
  std::vector<CoterieInterval> intervals;
  for (Round r = 1; r <= h.length(); ++r) {
    const auto& cot = h.at(r).coterie;
    if (intervals.empty() || intervals.back().coterie != cot) {
      intervals.push_back(CoterieInterval{r, r, cot});
    } else {
      intervals.back().end = r;
    }
  }
  return intervals;
}

FtssCheckResult check_ftss(const History& h, Round stab_time,
                           const WindowPredicate& sigma) {
  for (const auto& iv : coterie_intervals(h)) {
    const Round from = iv.begin + stab_time;
    if (from > iv.end) continue;  // interval too short: nothing is required
    const auto& faulty = h.at(iv.end).faulty_by_now;
    if (!sigma(h, from, iv.end, faulty)) {
      std::ostringstream os;
      os << "sigma violated on coterie-stable window [" << from << ", "
         << iv.end << "] (interval [" << iv.begin << ", " << iv.end
         << "], stab_time " << stab_time << ")";
      return FtssCheckResult{false, os.str()};
    }
  }
  return FtssCheckResult{};
}

WindowPredicate round_agreement_sigma() {
  return [](const History& h, Round from, Round to,
            const std::vector<bool>& faulty) {
    for (Round r = from; r <= to; ++r) {
      if (!clocks_agree_at(h, r, faulty)) return false;
    }
    for (Round r = from; r < to; ++r) {
      if (!rate_holds_between(h, r, faulty)) return false;
    }
    return true;
  };
}

FtssCheckResult check_round_agreement_ftss(const History& h, Round stab_time) {
  return check_ftss(h, stab_time, round_agreement_sigma());
}

FtssCheckResult check_round_agreement_eventual(const History& h, Round bound) {
  const StabilizationMeasure m = measure_round_agreement(h);
  const Round base = std::max<Round>(m.last_coterie_change, 1);
  if (h.length() < base + bound) {
    std::ostringstream os;
    os << "inconclusive: history ends at " << h.length()
       << ", needs to reach " << base + bound << " (last coterie change "
       << m.last_coterie_change << ", bound " << bound << ")";
    return FtssCheckResult{false, os.str()};
  }
  if (!m.stable_from) {
    std::ostringstream os;
    os << "never stabilizes: no clean suffix in " << h.length()
       << " rounds (last coterie change " << m.last_coterie_change << ")";
    return FtssCheckResult{false, os.str()};
  }
  if (*m.stable_from > base + bound) {
    std::ostringstream os;
    os << "stabilized only at round " << *m.stable_from << " > "
       << base + bound << " (last coterie change " << m.last_coterie_change
       << ", bound " << bound << ")";
    return FtssCheckResult{false, os.str()};
  }
  return FtssCheckResult{};
}

FtssCheckResult check_round_agreement_ss(const History& h, Round stab_time) {
  const std::vector<bool> nobody(h.n, false);
  auto sigma = round_agreement_sigma();
  const Round from = stab_time + 1;
  if (from > h.length()) return FtssCheckResult{};
  if (!sigma(h, from, h.length(), nobody)) {
    std::ostringstream os;
    os << "sigma violated on the " << stab_time << "-suffix [" << from << ", "
       << h.length() << "] with F = {}";
    return FtssCheckResult{false, os.str()};
  }
  return FtssCheckResult{};
}

StabilizationMeasure measure_round_agreement(const History& h) {
  StabilizationMeasure m;
  m.last_coterie_change = h.last_coterie_change();
  const auto faulty = h.faulty();
  const Round len = h.length();
  // Scan backwards for the longest clean suffix.
  Round stable_from = len + 1;
  for (Round r = len; r >= 1; --r) {
    const bool ok = clocks_agree_at(h, r, faulty) &&
                    (r == len || rate_holds_between(h, r, faulty));
    if (!ok) break;
    stable_from = r;
  }
  if (stable_from <= len) m.stable_from = stable_from;
  return m;
}

}  // namespace ftss
