// Execution shell for Π in its original, fault-tolerant-only form (Fig. 2):
// starts from the protocol-specified initial state, runs rounds
// 1..final_round broadcasting its full state each round, then halts.
//
// This is the "before" side of the compiler: it ft-solves its problem but a
// systemic failure (corrupted round counter or state) breaks it — which the
// tests and EXP7 demonstrate.
#pragma once

#include <memory>

#include "core/terminating.h"
#include "sim/process.h"

namespace ftss {

class FullInfoProcess : public SyncProcess {
 public:
  FullInfoProcess(ProcessId self, int n,
                  std::shared_ptr<const TerminatingProtocol> protocol,
                  Value input);

  void begin_round(Outbox& out) override;
  void end_round(const std::vector<Message>& delivered) override;

  Value snapshot_state() const override;
  void restore_state(const Value& state) override;
  std::optional<Round> round_counter() const override { return c_; }
  bool halted() const override { return halted_; }

  // The decision, once halted (null before).
  Value decision() const;

 private:
  ProcessId self_;
  int n_;
  std::shared_ptr<const TerminatingProtocol> protocol_;
  Value input_;
  Value s_;
  Round c_ = 1;
  bool halted_ = false;
};

}  // namespace ftss
