// Round agreement with a BOUNDED round counter — the impossibility the paper
// defers to its (never-published) full version: "the current round number is
// counted by an unbounded variable.  In the full paper, we show an
// impossibility for a bounded counter analogous to the impossibility shown
// in Theorem 2" (§2.4).
//
// This protocol is Figure 1 with all arithmetic mod M: broadcast c, adopt
// (max of received representatives + 1) mod M.  Why it cannot ftss-solve
// round agreement: with unbounded counters, a faulty process that follows
// its transition rule can never hold a counter AHEAD of the correct
// maximum, so after it enters the coterie once it can never disturb the
// correct processes again (the crux of Theorem 3's proof).  With a bounded
// counter, "behind" and "ahead" are indistinguishable mod M: a lagging
// faulty coterie member's representative periodically wraps into the
// correct processes' future and yanks some of them forward — a disturbance
// that recurs every O(M) rounds with NO coterie change to excuse it.
// Piecewise stability is therefore violated for every finite stabilization
// time once the history is long enough.
//
// tests/bounded_counter_test.cc builds exactly that execution and
// bench/bench_bounded_counter measures disturbance recurrence vs M
// (unbounded = one disturbance, bounded = Θ(horizon / M) of them).
#pragma once

#include "sim/process.h"

namespace ftss {

class BoundedRoundAgreementProcess : public SyncProcess {
 public:
  // Counters live in [0, modulus).
  BoundedRoundAgreementProcess(ProcessId self, std::int64_t modulus,
                               Round initial_round = 1);

  void begin_round(Outbox& out) override;
  void end_round(const std::vector<Message>& delivered) override;

  Value snapshot_state() const override;
  void restore_state(const Value& state) override;
  std::optional<Round> round_counter() const override { return c_; }

  std::int64_t modulus() const { return modulus_; }

 private:
  ProcessId self_;
  std::int64_t modulus_;
  Round c_;
};

}  // namespace ftss
