#include "core/compiler.h"

#include <algorithm>
#include <utility>

#include "util/numeric.h"

namespace ftss {

CompiledProcess::CompiledProcess(
    ProcessId self, int n, std::shared_ptr<const TerminatingProtocol> protocol,
    InputSource inputs, CompilerOptions options)
    : self_(self),
      n_(n),
      protocol_(std::move(protocol)),
      inputs_(std::move(inputs)),
      options_(options),
      c_(0),
      suspect_(n),
      matching_(n) {
  // Protocol-specified initial state: counter 0 (normalize(0) == 1, i.e. the
  // first round of iteration 0), fresh Π state, empty suspect set.
  reset_iteration(c_);
}

std::int64_t CompiledProcess::iteration_of(Round c) const {
  return floor_div(c, protocol_->final_round());
}

void CompiledProcess::reset_iteration(Round c) {
  current_input_ = inputs_(self_, iteration_of(c));
  s_ = protocol_->initial_state(self_, n_, current_input_);
  suspect_.clear();
}

void CompiledProcess::begin_round(Outbox& out) {
  ++actual_round_;
  // p sends ((STATE: p, s_p), (ROUND: p, c_p)) to all.  The envelope map is
  // a member reused across rounds: COW updates it in place once nothing
  // retains last round's copies, so steady-state rounds allocate no
  // envelope nodes (the STATE entry itself is a refcount bump on s_).
  msg_["STATE"] = s_;
  msg_["ROUND"] = Value(c_);
  out.broadcast(msg_);
}

void CompiledProcess::end_round(const std::vector<Message>& delivered) {
  const int final_round = protocol_->final_round();

  // Which senders produced a message tagged with our current round?
  matching_.clear();
  for (const auto& m : delivered) {
    const Value& tag = m.payload.at("ROUND");
    const bool tag_matches = tag.is_int() && tag.as_int() == c_;
    if (!options_.use_round_tags || tag_matches) matching_.insert(m.sender);
  }

  // S := suspect ∪ { q | no message from q with round(m) = c_p this round },
  // i.e. suspect ∪ ¬matching — three word ops on the packed sets.
  ProcessSet s_new = matching_;
  s_new.flip_all();
  s_new |= suspect_;

  // M := messages from non-suspects, unwrapped to Π's view (peer STATE).
  pi_view_.clear();
  for (const auto& m : delivered) {
    if (options_.use_suspect_filter && s_new.contains(m.sender)) continue;
    if (!options_.use_suspect_filter && options_.use_round_tags &&
        !matching_.contains(m.sender)) {
      continue;  // even without suspects, Π only consumes same-round traffic
    }
    pi_view_.push_back(Message{m.sender, m.dest, m.payload.at("STATE")});
  }

  // Π executes its round k = normalize(c_p).
  const int k = static_cast<int>(normalize_round(c_, final_round));
  s_ = protocol_->transition(self_, n_, s_, pi_view_, k);
  if (k == final_round) {
    decisions_.push_back(DecisionRecord{.process = self_,
                                        .iteration = iteration_of(c_),
                                        .at_actual_round = actual_round_,
                                        .value = protocol_->decision(s_),
                                        .input_used = current_input_});
  }
  suspect_ = std::move(s_new);

  // Round agreement (Figure 1) over the *unfiltered* ROUND tags.
  bool any = false;
  Round best = 0;
  for (const auto& m : delivered) {
    const Value& tag = m.payload.at("ROUND");
    if (!tag.is_int()) continue;
    const Round t = clamp_round_tag(tag.as_int());
    best = any ? std::max(best, t) : t;
    any = true;
  }
  c_ = (any ? best : clamp_round_tag(c_)) + 1;

  // Iteration boundary: re-establish an initial state of Π.
  if (normalize_round(c_, final_round) == 1) {
    reset_iteration(c_);
  }
}

Value CompiledProcess::snapshot_state() const {
  Value v;
  v["s"] = s_;
  v["c"] = Value(c_);
  Value::Array suspects;
  suspects.reserve(static_cast<std::size_t>(suspect_.count()));
  for (ProcessId q : suspect_) suspects.push_back(Value(static_cast<std::int64_t>(q)));
  v["suspect"] = Value(std::move(suspects));
  v["input"] = current_input_;
  return v;
}

void CompiledProcess::restore_state(const Value& state) {
  s_ = state.at("s");
  const Value& c = state.at("c");
  c_ = clamp_restored_round(
      c.is_int() ? c.as_int() : static_cast<Round>(state.hash() % 1000003));
  suspect_.clear();
  const Value& sus = state.at("suspect");
  if (sus.is_array()) {
    for (const auto& e : sus.as_array()) {
      if (e.is_int() && e.as_int() >= 0 && e.as_int() < n_) {
        suspect_.insert(static_cast<ProcessId>(e.as_int()));
      }
    }
  }
  current_input_ = state.at("input");
}

std::vector<std::unique_ptr<SyncProcess>> compile_protocol(
    int n, std::shared_ptr<const TerminatingProtocol> protocol,
    InputSource inputs, CompilerOptions options) {
  std::vector<std::unique_ptr<SyncProcess>> procs;
  procs.reserve(n);
  for (ProcessId p = 0; p < n; ++p) {
    procs.push_back(
        std::make_unique<CompiledProcess>(p, n, protocol, inputs, options));
  }
  return procs;
}

}  // namespace ftss
