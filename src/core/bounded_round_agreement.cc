#include "core/bounded_round_agreement.h"

#include <algorithm>

#include "util/numeric.h"

namespace ftss {

BoundedRoundAgreementProcess::BoundedRoundAgreementProcess(ProcessId self,
                                                           std::int64_t modulus,
                                                           Round initial_round)
    : self_(self),
      modulus_(std::max<std::int64_t>(modulus, 2)),
      c_(floor_mod(initial_round, modulus_)) {}

void BoundedRoundAgreementProcess::begin_round(Outbox& out) {
  Value m;
  m["type"] = Value("ROUND");
  m["p"] = Value(static_cast<std::int64_t>(self_));
  m["c"] = Value(c_);
  out.broadcast(std::move(m));
}

void BoundedRoundAgreementProcess::end_round(
    const std::vector<Message>& delivered) {
  // The naive bounded rule: integer max over representatives, then +1 mod M.
  // (There is no "right" rule — orderlessness of the cyclic group is the
  // impossibility; this representative-max rule is the natural candidate.)
  bool any = false;
  Round best = c_;
  for (const auto& m : delivered) {
    const Value& c = m.payload.at("c");
    if (!c.is_int()) continue;
    const Round t = floor_mod(c.as_int(), modulus_);
    best = any ? std::max(best, t) : t;
    any = true;
  }
  c_ = floor_mod((any ? best : c_) + 1, modulus_);
}

Value BoundedRoundAgreementProcess::snapshot_state() const {
  Value s;
  s["c"] = Value(c_);
  return s;
}

void BoundedRoundAgreementProcess::restore_state(const Value& state) {
  const Value& c = state.at("c");
  c_ = floor_mod(c.is_int() ? c.as_int()
                            : static_cast<Round>(state.hash() % 1000003),
                 modulus_);
}

}  // namespace ftss
