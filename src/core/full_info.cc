#include "core/full_info.h"

#include <utility>

namespace ftss {

FullInfoProcess::FullInfoProcess(
    ProcessId self, int n, std::shared_ptr<const TerminatingProtocol> protocol,
    Value input)
    : self_(self),
      n_(n),
      protocol_(std::move(protocol)),
      input_(std::move(input)),
      s_(protocol_->initial_state(self_, n_, input_)) {}

void FullInfoProcess::begin_round(Outbox& out) {
  // p sends (STATE: p, s_p^r) to all.
  Value m;
  m["STATE"] = s_;
  out.broadcast(std::move(m));
}

void FullInfoProcess::end_round(const std::vector<Message>& delivered) {
  // Unwrap peer states; the envelope carries the sender id.
  std::vector<Message> states;
  states.reserve(delivered.size());
  for (const auto& m : delivered) {
    states.push_back(Message{m.sender, m.dest, m.payload.at("STATE")});
  }
  const int k = static_cast<int>(c_);
  s_ = protocol_->transition(self_, n_, s_, states, k);
  // "if c_p^r = final_round then halt" — p halts after executing the round
  // in which its counter equaled final_round.
  if (c_ == protocol_->final_round()) {
    halted_ = true;
    return;
  }
  c_ = c_ + 1;
}

Value FullInfoProcess::snapshot_state() const {
  Value v;
  v["s"] = s_;
  v["c"] = Value(c_);
  v["halted"] = Value(halted_);
  return v;
}

void FullInfoProcess::restore_state(const Value& state) {
  s_ = state.at("s");
  const Value& c = state.at("c");
  c_ = c.is_int() ? c.as_int() : static_cast<Round>(state.hash() % 1000003);
  halted_ = state.at("halted").bool_or(false);
}

Value FullInfoProcess::decision() const { return protocol_->decision(s_); }

}  // namespace ftss
