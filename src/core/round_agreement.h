// The round-agreement protocol of Figure 1 (Theorem 3).
//
// Every round, each process broadcasts its round variable and adopts
// max(received) + 1.  This ftss-solves round agreement with stabilization
// time 1: within one round of the coterie stabilizing, all correct processes
// hold equal round variables and increment them in lock-step — no matter how
// the initial round variables were corrupted and despite up to f
// general-omission faulty processes.
#pragma once

#include "sim/process.h"

namespace ftss {

class RoundAgreementProcess : public SyncProcess {
 public:
  // `initial_round` is the protocol-specified initial value (the paper uses
  // 1); a systemic failure overrides it via restore_state.
  explicit RoundAgreementProcess(ProcessId self, Round initial_round = 1)
      : self_(self), c_(initial_round) {}

  void begin_round(Outbox& out) override;
  void end_round(const std::vector<Message>& delivered) override;

  Value snapshot_state() const override;
  void restore_state(const Value& state) override;
  std::optional<Round> round_counter() const override { return c_; }

  ProcessId id() const { return self_; }

 private:
  ProcessId self_;
  Round c_;
  Value msg_;  // reused broadcast payload; see begin_round
};

// A *uniform* variant used to demonstrate Theorem 2: it follows the same
// max+1 rule but additionally "self-checks": if a process observes that its
// round variable disagrees with one it received, it assumes it must be
// faulty and halts "before doing any harm" (Assumption 2's technique).
// Theorem 2 shows this technique is fatal under systemic failures: a
// *correct* process with a corrupted round variable halts itself, after
// which it can never satisfy Assumption 1's agreement/rate conditions.
class UniformRoundAgreementProcess : public SyncProcess {
 public:
  explicit UniformRoundAgreementProcess(ProcessId self, Round initial_round = 1)
      : self_(self), c_(initial_round) {}

  void begin_round(Outbox& out) override;
  void end_round(const std::vector<Message>& delivered) override;

  Value snapshot_state() const override;
  void restore_state(const Value& state) override;
  std::optional<Round> round_counter() const override { return c_; }
  bool halted() const override { return halted_; }

 private:
  ProcessId self_;
  Round c_;
  bool halted_ = false;
  Value msg_;  // reused broadcast payload; see begin_round
};

}  // namespace ftss
